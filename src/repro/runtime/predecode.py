"""The pre-decoded template-dispatch interpreter (the fast engine).

The reference engine re-decodes every instruction on every dynamic step:
dictionary dispatch on the opcode, ``isinstance`` tests on each operand,
a fresh :class:`StepEvent` per instruction whether or not anyone is
listening.  This module removes all of that by translating each
``Function`` **once** into a flat array of bound Python closures — a
"template JIT" in the classic threaded-code sense:

* **closure templates** — one factory per opcode specializes a closure
  at translate time, capturing resolved registers, constants, jump
  targets, external-call handlers, and ``dynamic_cost`` in its cells.
  Executing an instruction is then one indirect call, with zero decode
  work and zero event allocation;
* **superinstructions** — the two hottest pairs, compare+branch (every
  loop latch) and checkpoint+store (every instrumented store, by
  construction adjacent and same-address), fuse into single closures
  that charge exactly the events/costs of the unfused sequence;
* **a fast-path/slow-path hook tier** — whenever ``pre_step`` or
  ``post_step`` is installed (profiling, trace capture, SFI injection)
  or a redirect is pending, :class:`FastInterpreter` delegates to the
  *inherited* reference ``_step``, so hook observable behaviour is the
  reference behaviour by definition.  Hooks may come and go mid-run;
  the engine re-checks at every block boundary;
* **a decode cache** — decoded programs are memoized per ``Module``
  object (validated by a cheap structural signature) and shared across
  content-equal copies via the pipeline's module fingerprint, so a
  campaign forking N workers decodes each module once per process, not
  once per trial.

The non-negotiable contract: observable behaviour is **bit-identical**
to :class:`ReferenceInterpreter` — dynamic events, cost /
``app_cost`` / ``instrumentation_cost``, trap reasons and indices,
``ExecutionLimit`` timing, recovery/rollback state, ``peak_ckpt_words``,
memory images, and resume positions after a trap.  Every closure
therefore replicates the reference ordering exactly: counters charge
*after* a successful execute (a trapping instruction charges nothing),
``Trap.event_index`` carries the pre-increment event counter, and
``frame.ip`` always names the trapping instruction when an exception
escapes.  ``tests/test_engine_equivalence.py`` is the harness that
holds both engines to this contract.
"""

from __future__ import annotations

import operator
import weakref
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.types import wrap_int
from repro.ir.values import Constant, MemoryObject, MemRef, VirtualRegister
from repro.pipeline.manager import module_fingerprint
from repro.runtime.interpreter import (
    ExecResult,
    ExecutionLimit,
    ReferenceInterpreter,
    StepEvent,
    Trap,
    _default_external,
)
from repro.runtime.memory import MachineMemory, MemoryError_, Pointer

import math

_INT_MASK = (1 << 64) - 1
_INT_SIGN = 1 << 63
_INT_WRAP = 1 << 64

#: Integer ops whose reference semantics are ``wrap_int(raw(lhs, rhs))``:
#: safe to inline with a mask + sign-extend when both operands are
#: plain ints (bools and out-of-range externals fall back).  Division
#: and remainder stay on the slow path (traps, float-based truncation);
#: min/max stay off because the reference does *not* wrap their result.
_INT_FAST = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
    "shl": lambda a, b: a << (b & 63),
    "lshr": lambda a, b: (a & _INT_MASK) >> (b & 63),
    "ashr": lambda a, b: a >> (b & 63),
}

#: Float ops that are a bare Python function when both operands are
#: already floats (the reference's ``float()`` coercions are identity).
#: ``fdiv`` is handled separately (division-by-zero trap).
_FLOAT_FAST = {
    "fadd": operator.add,
    "fsub": operator.sub,
    "fmul": operator.mul,
    "fmin": min,
    "fmax": max,
}

#: Ordered predicates; ``eq``/``ne`` are separate because they are
#: exact for pointers too and need no guard at all.
_REL = {
    "feq": operator.eq,
    "fne": operator.ne,
    "slt": operator.lt,
    "flt": operator.lt,
    "sle": operator.le,
    "fle": operator.le,
    "sgt": operator.gt,
    "fgt": operator.gt,
    "sge": operator.ge,
    "fge": operator.ge,
}


# ----------------------------------------------------------------------
# slow-path helpers shared by the templates (exact reference semantics)
# ----------------------------------------------------------------------


def _slow_cmp(interp, pred: str, lhs, rhs) -> int:
    if isinstance(lhs, Pointer) or isinstance(rhs, Pointer):
        if pred == "eq":
            return int(lhs == rhs)
        if pred == "ne":
            return int(lhs != rhs)
        raise Trap(f"pointer compare {pred}", interp.events)
    if pred in ("eq", "feq"):
        return int(lhs == rhs)
    if pred in ("ne", "fne"):
        return int(lhs != rhs)
    if pred in ("slt", "flt"):
        return int(lhs < rhs)
    if pred in ("sle", "fle"):
        return int(lhs <= rhs)
    if pred in ("sgt", "fgt"):
        return int(lhs > rhs)
    if pred in ("sge", "fge"):
        return int(lhs >= rhs)
    raise Trap(f"unhandled predicate {pred}", interp.events)


def _apply_unop(interp, op: str, src):
    if isinstance(src, Pointer):
        raise Trap(f"unary {op} on pointer", interp.events)
    if op == "neg":
        return wrap_int(-int(src))
    if op == "not":
        return wrap_int(~int(src))
    if op == "fneg":
        return -float(src)
    if op == "sitofp":
        return float(int(src))
    if op == "fptosi":
        return wrap_int(int(float(src)))
    if op == "fsqrt":
        if float(src) < 0:
            raise Trap("sqrt of negative", interp.events)
        return math.sqrt(float(src))
    if op == "fabs":
        return abs(float(src))
    raise Trap(f"unhandled unop {op}", interp.events)


def _bump_ckpt_words(interp, frame, region_id: int, log: list, delta: int) -> None:
    """Incrementally maintained version of ``_track_ckpt``.

    The reference recounts the whole undo log on every push — O(n²)
    per region.  The fast engine keeps a per-``(frame, region)`` word
    count, recomputing from scratch only after slow-path steps (which
    may mutate logs behind our back: guard fault injection, hook code).
    """
    cw = interp._ckpt_words
    key = (frame.id, region_id)
    if interp._ckpt_words_ok:
        words = cw.get(key)
        if words is None:
            words = sum(2 if r[0] == "mem" else 1 for r in log)
        else:
            words += delta
    else:
        cw.clear()
        interp._ckpt_words_ok = True
        words = sum(2 if r[0] == "mem" else 1 for r in log)
    cw[key] = words
    peaks = interp.peak_ckpt_words
    if words > peaks.get(region_id, 0):
        peaks[region_id] = words


# ----------------------------------------------------------------------
# operand and address specialization
# ----------------------------------------------------------------------


def _operand(operand) -> Callable:
    """An evaluator closure: constant folded, or one dict probe."""
    if isinstance(operand, Constant):
        value = operand.value

        def const_eval(frame, _value=value):
            return _value

        return const_eval

    def reg_eval(frame, _reg=operand):
        try:
            return frame.regs[_reg]
        except KeyError:
            return 0

    return reg_eval


def _resolver(ref: MemRef) -> Callable:
    """Specialized ``_resolve``: returns ``(name, index)`` or raises Trap.

    All four shapes (global/stack base × constant/register index) get a
    dedicated closure with the Trap message precomputed; pointer-typed
    register bases are checked exactly like the reference.
    """
    base = ref.base
    index = ref.index
    if isinstance(index, Constant):
        cidx = index.value
        if isinstance(cidx, float):
            cidx = int(cidx)
        ireg = None
    else:
        cidx = None
        ireg = index

    if isinstance(base, MemoryObject):
        if base.kind == "stack":
            sname = base.name
            missing = f"stack object {sname} not in frame"
            if ireg is None:

                def resolve(interp, frame):
                    name = frame.stack_instances.get(sname)
                    if name is None:
                        raise Trap(missing, interp.events)
                    return name, cidx

            else:

                def resolve(interp, frame):
                    name = frame.stack_instances.get(sname)
                    if name is None:
                        raise Trap(missing, interp.events)
                    idx = frame.regs.get(ireg, 0)
                    if isinstance(idx, float):
                        idx = int(idx)
                    return name, idx

            return resolve
        gname = base.name
        if ireg is None:
            pair = (gname, cidx)

            def resolve(interp, frame, _pair=pair):
                return _pair

        else:

            def resolve(interp, frame):
                idx = frame.regs.get(ireg, 0)
                if isinstance(idx, float):
                    idx = int(idx)
                return gname, idx

        return resolve

    breg = base
    notptr = f"indirect access through non-pointer {base}"
    if ireg is None:

        def resolve(interp, frame):
            value = frame.regs.get(breg)
            if not isinstance(value, Pointer):
                raise Trap(notptr, interp.events)
            return value.obj, value.offset + cidx

    else:

        def resolve(interp, frame):
            value = frame.regs.get(breg)
            if not isinstance(value, Pointer):
                raise Trap(notptr, interp.events)
            idx = frame.regs.get(ireg, 0)
            if isinstance(idx, float):
                idx = int(idx)
            return value.obj, value.offset + idx

    return resolve


# ----------------------------------------------------------------------
# opcode templates
#
# Every template returns a closure ``step(interp, frame) -> next_ip``.
# Sentinels: ``-1`` leaves the block loop entirely (frame switch, call,
# external, return); ``-2`` re-dispatches on ``frame.block`` within the
# same function (branch taken).  Closures that can raise set
# ``frame.ip`` to their own index first, so a trap always resumes (or
# retries) at exactly the reference position.
# ----------------------------------------------------------------------


def _t_binop(inst, idx: int, nxt: int):
    op, dest, dc = inst.op, inst.dest, inst.dynamic_cost
    lhs, rhs = inst.lhs, inst.rhs
    lconst = isinstance(lhs, Constant)
    rconst = isinstance(rhs, Constant)

    fast_int = _INT_FAST.get(op)
    if fast_int is not None:
        # Shape-specialized: operand fetches are inlined (no nested
        # evaluator call).  A constant operand is pre-coerced exactly
        # the way the reference would coerce it (``int()`` truncation),
        # so only the register operand needs a run-time type guard.
        if not lconst and not rconst:

            def step(interp, frame, _f=fast_int, _l=lhs, _r=rhs,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    a = regs[_l]
                    b = regs[_r]
                except KeyError:
                    a = regs.get(_l, 0)
                    b = regs.get(_r, 0)
                if type(a) is int and type(b) is int:
                    v = _f(a, b) & _INT_MASK
                    if v & _INT_SIGN:
                        v -= _INT_WRAP
                    regs[_d] = v
                else:
                    frame.ip = idx
                    regs[_d] = interp._apply_binop(op, a, b)
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        if not lconst and rconst and type(rhs.value) is int:
            rv = rhs.value

            def step(interp, frame, _f=fast_int, _l=lhs, _rv=rv,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    a = regs[_l]
                except KeyError:
                    a = 0
                if type(a) is int:
                    v = _f(a, _rv) & _INT_MASK
                    if v & _INT_SIGN:
                        v -= _INT_WRAP
                    regs[_d] = v
                else:
                    frame.ip = idx
                    regs[_d] = interp._apply_binop(op, a, _rv)
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        if lconst and not rconst and type(lhs.value) is int:
            lv = lhs.value

            def step(interp, frame, _f=fast_int, _lv=lv, _r=rhs,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    b = regs[_r]
                except KeyError:
                    b = 0
                if type(b) is int:
                    v = _f(_lv, b) & _INT_MASK
                    if v & _INT_SIGN:
                        v -= _INT_WRAP
                    regs[_d] = v
                else:
                    frame.ip = idx
                    regs[_d] = interp._apply_binop(op, _lv, b)
                interp.events += 1
                interp.cost += _dc
                return _n

            return step

    fast_float = _FLOAT_FAST.get(op)
    if fast_float is not None:
        if not lconst and not rconst:

            def step(interp, frame, _f=fast_float, _l=lhs, _r=rhs,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    a = regs[_l]
                    b = regs[_r]
                except KeyError:
                    a = regs.get(_l, 0)
                    b = regs.get(_r, 0)
                if type(a) is float and type(b) is float:
                    regs[_d] = _f(a, b)
                else:
                    frame.ip = idx
                    regs[_d] = interp._apply_binop(op, a, b)
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        if not lconst and rconst and isinstance(rhs.value, (int, float)) \
                and not isinstance(rhs.value, bool):
            rv = float(rhs.value)

            def step(interp, frame, _f=fast_float, _l=lhs, _rv=rv,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    a = regs[_l]
                except KeyError:
                    a = 0
                if type(a) is float:
                    regs[_d] = _f(a, _rv)
                else:
                    frame.ip = idx
                    regs[_d] = interp._apply_binop(op, a, rhs.value)
                interp.events += 1
                interp.cost += _dc
                return _n

            return step

    if op == "fdiv" and not lconst and not rconst:

        def step(interp, frame, _l=lhs, _r=rhs, _d=dest, _dc=dc, _n=nxt):
            regs = frame.regs
            try:
                a = regs[_l]
                b = regs[_r]
            except KeyError:
                a = regs.get(_l, 0)
                b = regs.get(_r, 0)
            if type(a) is float and type(b) is float:
                if b == 0.0:
                    frame.ip = idx
                    raise Trap("float division by zero", interp.events)
                regs[_d] = a / b
            else:
                frame.ip = idx
                regs[_d] = interp._apply_binop(op, a, b)
            interp.events += 1
            interp.cost += _dc
            return _n

        return step

    if op in ("sdiv", "srem") and not lconst:
        # The reference divides through floats (``int(lhs / rhs)``) to
        # truncate toward zero; replicate that expression exactly so
        # large-magnitude operands round (or overflow) identically.
        sdiv = op == "sdiv"
        zmsg = ("integer division by zero" if sdiv
                else "integer remainder by zero")
        if not rconst:

            def step(interp, frame, _l=lhs, _r=rhs, _d=dest, _dc=dc,
                     _n=nxt, _sd=sdiv, _z=zmsg):
                regs = frame.regs
                try:
                    a = regs[_l]
                    b = regs[_r]
                except KeyError:
                    a = regs.get(_l, 0)
                    b = regs.get(_r, 0)
                if type(a) is int and type(b) is int:
                    if b == 0:
                        frame.ip = idx
                        raise Trap(_z, interp.events)
                    try:
                        q = int(a / b)
                    except BaseException:
                        frame.ip = idx
                        raise
                    v = (q if _sd else a - q * b) & _INT_MASK
                    if v & _INT_SIGN:
                        v -= _INT_WRAP
                    regs[_d] = v
                else:
                    frame.ip = idx
                    regs[_d] = interp._apply_binop(op, a, b)
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        if type(rhs.value) is int and rhs.value != 0:
            rv = rhs.value

            def step(interp, frame, _l=lhs, _rv=rv, _d=dest, _dc=dc,
                     _n=nxt, _sd=sdiv):
                regs = frame.regs
                try:
                    a = regs[_l]
                except KeyError:
                    a = 0
                if type(a) is int:
                    try:
                        q = int(a / _rv)
                    except BaseException:
                        frame.ip = idx
                        raise
                    v = (q if _sd else a - q * _rv) & _INT_MASK
                    if v & _INT_SIGN:
                        v -= _INT_WRAP
                    regs[_d] = v
                else:
                    frame.ip = idx
                    regs[_d] = interp._apply_binop(op, a, _rv)
                interp.events += 1
                interp.cost += _dc
                return _n

            return step

    if op in ("min", "max"):
        # The reference does NOT wrap min/max results, so the fast path
        # must not either (an unwrapped wide value from an external
        # call passes through unchanged on both engines).
        pick = min if op == "min" else max
        if not lconst and not rconst:

            def step(interp, frame, _f=pick, _l=lhs, _r=rhs,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    a = regs[_l]
                    b = regs[_r]
                except KeyError:
                    a = regs.get(_l, 0)
                    b = regs.get(_r, 0)
                if type(a) is int and type(b) is int:
                    regs[_d] = _f(a, b)
                else:
                    frame.ip = idx
                    regs[_d] = interp._apply_binop(op, a, b)
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        if not lconst and rconst and type(rhs.value) is int:
            rv = rhs.value

            def step(interp, frame, _f=pick, _l=lhs, _rv=rv,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    a = regs[_l]
                except KeyError:
                    a = 0
                if type(a) is int:
                    regs[_d] = _f(a, _rv)
                else:
                    frame.ip = idx
                    regs[_d] = interp._apply_binop(op, a, _rv)
                interp.events += 1
                interp.cost += _dc
                return _n

            return step

    # Everything else (constant-constant shapes, float-typed constants
    # in int ops, constant-zero divisors, ...) replays the reference
    # arithmetic verbatim.
    get_l = _operand(lhs)
    get_r = _operand(rhs)

    def step(interp, frame):
        a = get_l(frame)
        b = get_r(frame)
        frame.ip = idx
        frame.regs[dest] = interp._apply_binop(op, a, b)
        interp.events += 1
        interp.cost += dc
        return nxt

    return step


def _t_unop(inst, idx: int, nxt: int):
    op, dest, dc = inst.op, inst.dest, inst.dynamic_cost
    get_s = _operand(inst.src)

    def step(interp, frame):
        frame.ip = idx
        frame.regs[dest] = _apply_unop(interp, op, get_s(frame))
        interp.events += 1
        interp.cost += dc
        return nxt

    return step


def _t_cmp(inst, idx: int, nxt: int):
    pred, dest, dc = inst.pred, inst.dest, inst.dynamic_cost
    lhs, rhs = inst.lhs, inst.rhs
    lconst = isinstance(lhs, Constant)
    rconst = isinstance(rhs, Constant)
    # ``eq``/``ne`` are exact for every operand kind (pointers
    # included), so they need no guard at all.
    if pred in ("eq", "ne"):
        eq = pred == "eq"
        if not lconst and not rconst:

            def step(interp, frame, _l=lhs, _r=rhs, _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    r = regs[_l] == regs[_r]
                except KeyError:
                    r = regs.get(_l, 0) == regs.get(_r, 0)
                regs[_d] = 1 if r == eq else 0
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        if not lconst and rconst:
            rv = rhs.value

            def step(interp, frame, _l=lhs, _rv=rv, _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    r = regs[_l] == _rv
                except KeyError:
                    r = 0 == _rv
                regs[_d] = 1 if r == eq else 0
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        get_l = _operand(lhs)
        get_r = _operand(rhs)

        def step(interp, frame, _l=get_l, _r=get_r, _d=dest, _dc=dc, _n=nxt):
            r = _l(frame) == _r(frame)
            frame.regs[_d] = 1 if r == eq else 0
            interp.events += 1
            interp.cost += _dc
            return _n

        return step
    rel = _REL.get(pred)
    if rel is not None:
        if not lconst and not rconst:

            def step(interp, frame, _f=rel, _l=lhs, _r=rhs,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    a = regs[_l]
                    b = regs[_r]
                except KeyError:
                    a = regs.get(_l, 0)
                    b = regs.get(_r, 0)
                if isinstance(a, Pointer) or isinstance(b, Pointer):
                    frame.ip = idx
                    regs[_d] = _slow_cmp(interp, pred, a, b)
                else:
                    regs[_d] = 1 if _f(a, b) else 0
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        if not lconst and rconst:
            rv = rhs.value

            def step(interp, frame, _f=rel, _l=lhs, _rv=rv,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    a = regs[_l]
                except KeyError:
                    a = 0
                if isinstance(a, Pointer):
                    frame.ip = idx
                    regs[_d] = _slow_cmp(interp, pred, a, _rv)
                else:
                    regs[_d] = 1 if _f(a, _rv) else 0
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        if lconst and not rconst:
            lv = lhs.value

            def step(interp, frame, _f=rel, _lv=lv, _r=rhs,
                     _d=dest, _dc=dc, _n=nxt):
                regs = frame.regs
                try:
                    b = regs[_r]
                except KeyError:
                    b = 0
                if isinstance(b, Pointer):
                    frame.ip = idx
                    regs[_d] = _slow_cmp(interp, pred, _lv, b)
                else:
                    regs[_d] = 1 if _f(_lv, b) else 0
                interp.events += 1
                interp.cost += _dc
                return _n

            return step
        lv, rv = lhs.value, rhs.value

        def step(interp, frame, _f=rel, _d=dest, _dc=dc, _n=nxt):
            frame.regs[_d] = 1 if _f(lv, rv) else 0
            interp.events += 1
            interp.cost += _dc
            return _n

        return step
    get_l = _operand(lhs)
    get_r = _operand(rhs)

    def step(interp, frame):
        frame.ip = idx
        frame.regs[dest] = _slow_cmp(interp, pred, get_l(frame), get_r(frame))
        interp.events += 1
        interp.cost += dc
        return nxt

    return step


def _t_select(inst, idx: int, nxt: int):
    dest, dc = inst.dest, inst.dynamic_cost
    get_c = _operand(inst.cond)
    get_t = _operand(inst.if_true)
    get_f = _operand(inst.if_false)

    def step(interp, frame):
        c = get_c(frame)
        if isinstance(c, Pointer) or c:
            frame.regs[dest] = get_t(frame)
        else:
            frame.regs[dest] = get_f(frame)
        interp.events += 1
        interp.cost += dc
        return nxt

    return step


def _t_mov(inst, idx: int, nxt: int):
    dest, dc = inst.dest, inst.dynamic_cost
    if isinstance(inst.src, Constant):
        value = inst.src.value

        def step(interp, frame, _v=value):
            frame.regs[dest] = _v
            interp.events += 1
            interp.cost += dc
            return nxt

        return step
    src = inst.src

    def step(interp, frame):
        regs = frame.regs
        try:
            regs[dest] = regs[src]
        except KeyError:
            regs[dest] = 0
        interp.events += 1
        interp.cost += dc
        return nxt

    return step


def _t_addrof(inst, idx: int, nxt: int):
    dest, dc = inst.dest, inst.dynamic_cost
    resolve = _resolver(inst.ref)

    def step(interp, frame):
        try:
            name, index = resolve(interp, frame)
        except BaseException:
            frame.ip = idx
            raise
        frame.regs[dest] = Pointer(name, index)
        interp.events += 1
        interp.cost += dc
        return nxt

    return step


def _t_load(inst, idx: int, nxt: int):
    dest, dc = inst.dest, inst.dynamic_cost
    ref = inst.ref
    base, index = ref.base, ref.index
    # Direct global with a register index — the hot array-access shape.
    # The cell map is probed inline (``interp._mem_cells`` aliases
    # ``memory._cells``); trap messages replicate ``MachineMemory``
    # verbatim.  Globals are never released, but the dead-object check
    # is kept for exactness.
    if isinstance(base, MemoryObject) and base.kind == "global":
        gname = base.name
        if isinstance(index, Constant):
            gidx = index.value
            if isinstance(gidx, float):
                gidx = int(gidx)

            def step(interp, frame, _g=gname, _i=gidx,
                     _d=dest, _dc=dc, _n=nxt):
                try:
                    cells = interp._mem_cells[_g]
                    if 0 <= _i < len(cells):
                        frame.regs[_d] = cells[_i]
                    else:
                        raise Trap(
                            f"read out of bounds: {_g}[{_i}] "
                            f"(size {len(cells)})",
                            interp.events,
                        )
                except KeyError:
                    frame.ip = idx
                    raise Trap(
                        f"read from dead object {_g!r}", interp.events
                    ) from None
                except BaseException:
                    frame.ip = idx
                    raise
                interp.events += 1
                interp.cost += _dc
                return _n

            return step

        def step(interp, frame, _g=gname, _r=index, _d=dest, _dc=dc, _n=nxt):
            try:
                i = frame.regs[_r]
            except KeyError:
                i = 0
            try:
                if isinstance(i, float):
                    i = int(i)
                cells = interp._mem_cells[_g]
                if 0 <= i < len(cells):
                    frame.regs[_d] = cells[i]
                else:
                    raise Trap(
                        f"read out of bounds: {_g}[{i}] (size {len(cells)})",
                        interp.events,
                    )
            except KeyError:
                frame.ip = idx
                raise Trap(
                    f"read from dead object {_g!r}", interp.events
                ) from None
            except BaseException:
                frame.ip = idx
                raise
            interp.events += 1
            interp.cost += _dc
            return _n

        return step

    resolve = _resolver(ref)

    def step(interp, frame, _resolve=resolve, _d=dest, _dc=dc, _n=nxt):
        try:
            name, i = _resolve(interp, frame)
            cells = interp._mem_cells.get(name)
            if cells is None:
                raise Trap(f"read from dead object {name!r}", interp.events)
            if 0 <= i < len(cells):
                frame.regs[_d] = cells[i]
            else:
                raise Trap(
                    f"read out of bounds: {name}[{i}] (size {len(cells)})",
                    interp.events,
                )
        except BaseException:
            frame.ip = idx
            raise
        interp.events += 1
        interp.cost += _dc
        return _n

    return step


def _t_store(inst, idx: int, nxt: int):
    dc = inst.dynamic_cost
    ref, value = inst.ref, inst.value
    base, index = ref.base, ref.index
    vconst = isinstance(value, Constant)
    if isinstance(base, MemoryObject) and base.kind == "global" \
            and not isinstance(index, Constant) and not vconst:

        def step(interp, frame, _g=base.name, _r=index, _v=value,
                 _dc=dc, _n=nxt):
            regs = frame.regs
            try:
                i = regs[_r]
            except KeyError:
                i = 0
            try:
                if isinstance(i, float):
                    i = int(i)
                cells = interp._mem_cells[_g]
                if 0 <= i < len(cells):
                    try:
                        cells[i] = regs[_v]
                    except KeyError:
                        cells[i] = 0
                else:
                    raise Trap(
                        f"write out of bounds: {_g}[{i}] (size {len(cells)})",
                        interp.events,
                    )
            except KeyError:
                frame.ip = idx
                raise Trap(
                    f"write to dead object {_g!r}", interp.events
                ) from None
            except BaseException:
                frame.ip = idx
                raise
            interp.events += 1
            interp.cost += _dc
            return _n

        return step

    resolve = _resolver(ref)
    get_v = _operand(value)

    def step(interp, frame, _resolve=resolve, _v=get_v, _dc=dc, _n=nxt):
        try:
            name, i = _resolve(interp, frame)
            cells = interp._mem_cells.get(name)
            if cells is None:
                raise Trap(f"write to dead object {name!r}", interp.events)
            if 0 <= i < len(cells):
                cells[i] = _v(frame)
            else:
                raise Trap(
                    f"write out of bounds: {name}[{i}] (size {len(cells)})",
                    interp.events,
                )
        except BaseException:
            frame.ip = idx
            raise
        interp.events += 1
        interp.cost += _dc
        return _n

    return step


def _t_alloc(inst, idx: int, nxt: int, func_name: str, label: str):
    dest, dc = inst.dest, inst.dynamic_cost
    get_s = _operand(inst.size)
    site = f"heap:{func_name}:{label}"

    def step(interp, frame):
        try:
            size = get_s(frame)
            if isinstance(size, float):
                size = int(size)
            name = interp.memory.allocate_heap(int(size), site)
        except MemoryError_ as exc:
            frame.ip = idx
            raise Trap(str(exc), interp.events) from None
        except BaseException:
            frame.ip = idx
            raise
        frame.regs[dest] = Pointer(name, 0)
        interp.events += 1
        interp.cost += dc
        return nxt

    return step


def _t_br(inst, idx: int, targets: Dict[str, int]):
    dc = inst.dynamic_cost
    if_true, if_false = inst.if_true, inst.if_false
    ti, fi = targets[if_true], targets[if_false]
    if isinstance(inst.cond, VirtualRegister):
        creg = inst.cond

        def step(interp, frame, _c=creg, _t=if_true, _e=if_false,
                 _ti=ti, _fi=fi):
            try:
                c = frame.regs[_c]
            except KeyError:
                c = 0
            interp.events += 1
            interp.cost += dc
            frame.ip = 0
            if isinstance(c, Pointer) or c:
                frame.block = _t
                return _ti
            frame.block = _e
            return _fi

        return step
    get_c = _operand(inst.cond)

    def step(interp, frame, _c=get_c, _ti=ti, _fi=fi):
        c = _c(frame)
        interp.events += 1
        interp.cost += dc
        frame.ip = 0
        if isinstance(c, Pointer) or c:
            frame.block = if_true
            return _ti
        frame.block = if_false
        return _fi

    return step


def _t_jmp(inst, idx: int, targets: Dict[str, int]):
    dc = inst.dynamic_cost
    target = inst.target
    ti = targets[target]

    def step(interp, frame, _ti=ti):
        frame.block = target
        frame.ip = 0
        interp.events += 1
        interp.cost += dc
        return _ti

    return step


def _t_call(inst, idx: int, nxt: int, module: Module, func_name: str, label: str):
    dest, dc = inst.dest, inst.dynamic_cost
    arg_evals = tuple(_operand(a) for a in inst.args)
    callee = module.get_function(inst.callee)
    ipn = idx + 1  # block-relative resume position (frame.ip units)
    if callee is not None:

        def step(interp, frame, _callee=callee, _args=arg_evals):
            args = [g(frame) for g in _args]
            frame.ip = ipn  # the reference advances before the push
            interp._push_frame(_callee, args, ret_dest=dest)
            interp.events += 1
            interp.cost += dc
            return -1

        return step

    name = inst.callee
    inst_ref = inst

    def step(interp, frame, _args=arg_evals):
        args = [g(frame) for g in _args]
        frame.ip = ipn
        handler = interp.externals.get(name, _default_external)
        # External code may observe the interpreter; settle the lazily
        # maintained app_cost before handing over control.
        interp.app_cost = interp.cost - interp.instrumentation_cost
        result = handler(args)
        if dest is not None:
            frame.regs[dest] = result if result is not None else 0
        interp.events += 1
        interp.cost += dc
        # External code can install hooks or request recovery mid-call;
        # mirror the tail of the reference ``_step`` before leaving the
        # fast loop so this step's observable effects match exactly.
        post = interp.post_step
        if post is not None:
            post(interp, StepEvent(
                index=interp.events - 1,
                func=func_name,
                block=label,
                inst_index=idx,
                inst=inst_ref,
                frame_id=frame.id,
                loads=[],
                stores=[],
            ))
        if interp._pending_redirect is not None and interp.frames:
            top = interp.frames[-1]
            top.block = interp._pending_redirect
            top.ip = 0
            interp._pending_redirect = None
        return -1

    return step


def _t_ret(inst, idx: int, nxt: int):
    dc = inst.dynamic_cost
    if inst.value is None:

        def step(interp, frame):
            interp._pop_frame(None)
            interp.events += 1
            interp.cost += dc
            return -1

        return step
    get_v = _operand(inst.value)

    def step(interp, frame):
        interp._pop_frame(get_v(frame))
        interp.events += 1
        interp.cost += dc
        return -1

    return step


def _t_set_recovery_ptr(inst, idx: int, nxt: int):
    rid, dc = inst.region_id, inst.dynamic_cost
    ptr = (inst.region_id, inst.recovery_label)

    def step(interp, frame):
        frame.recovery_ptr = ptr
        frame.region_ckpts[rid] = []
        guard_cost = interp.guard.on_publish(frame)
        if guard_cost:
            interp.cost += guard_cost
            interp.instrumentation_cost += guard_cost
        interp._ckpt_words.pop((frame.id, rid), None)
        interp.events += 1
        interp.cost += dc
        interp.instrumentation_cost += dc
        return nxt

    return step


def _t_clear_recovery_ptr(inst, idx: int, nxt: int):
    rid, dc = inst.region_id, inst.dynamic_cost

    def step(interp, frame):
        if frame.recovery_ptr is not None and frame.recovery_ptr[0] == rid:
            frame.recovery_ptr = None
            frame.region_ckpts[rid] = []
            guard_cost = interp.guard.on_clear(frame, rid)
            if guard_cost:
                interp.cost += guard_cost
                interp.instrumentation_cost += guard_cost
            interp._ckpt_words.pop((frame.id, rid), None)
        interp.events += 1
        interp.cost += dc
        interp.instrumentation_cost += dc
        return nxt

    return step


def _t_ckpt_reg(inst, idx: int, nxt: int):
    rid, reg, dc = inst.region_id, inst.reg, inst.dynamic_cost

    def step(interp, frame):
        record = ("reg", reg, frame.regs.get(reg, 0))
        log = frame.region_ckpts.get(rid)
        if log is None:
            log = frame.region_ckpts[rid] = []
        log.append(record)
        guard_cost = interp.guard.on_push(frame, rid, record)
        if guard_cost:
            interp.cost += guard_cost
            interp.instrumentation_cost += guard_cost
        _bump_ckpt_words(interp, frame, rid, log, 1)
        interp.events += 1
        interp.cost += dc
        interp.instrumentation_cost += dc
        return nxt

    return step


def _t_ckpt_mem(inst, idx: int, nxt: int):
    rid, dc = inst.region_id, inst.dynamic_cost
    resolve = _resolver(inst.ref)

    def step(interp, frame, _resolve=resolve):
        try:
            name, index = _resolve(interp, frame)
            cells = interp._mem_cells.get(name)
            if cells is None:
                raise Trap(f"read from dead object {name!r}", interp.events)
            if 0 <= index < len(cells):
                value = cells[index]
            else:
                raise Trap(
                    f"read out of bounds: {name}[{index}] "
                    f"(size {len(cells)})",
                    interp.events,
                )
        except BaseException:
            frame.ip = idx
            raise
        record = ("mem", name, index, value)
        log = frame.region_ckpts.get(rid)
        if log is None:
            log = frame.region_ckpts[rid] = []
        log.append(record)
        guard_cost = interp.guard.on_push(frame, rid, record)
        if guard_cost:
            interp.cost += guard_cost
            interp.instrumentation_cost += guard_cost
        _bump_ckpt_words(interp, frame, rid, log, 2)
        interp.events += 1
        interp.cost += dc
        interp.instrumentation_cost += dc
        return nxt

    return step


def _t_restore(inst, idx: int, nxt: int):
    rid, dc = inst.region_id, inst.dynamic_cost

    def step(interp, frame):
        try:
            records, guard_cost = interp.guard.verify_restore(frame, rid)
            if guard_cost:
                interp.cost += guard_cost
                interp.instrumentation_cost += guard_cost
            memory = interp.memory
            regs = frame.regs
            for record in reversed(records):
                if record[0] == "reg":
                    regs[record[1]] = record[2]
                else:
                    _, name, index, value = record
                    if memory.exists(name):
                        try:
                            memory.write(name, index, value)
                        except MemoryError_ as exc:
                            raise Trap(str(exc), interp.events) from None
        except BaseException:
            frame.ip = idx
            raise
        frame.region_ckpts[rid] = []
        interp.guard.on_reset(frame, rid)
        interp._ckpt_words.pop((frame.id, rid), None)
        interp.events += 1
        interp.cost += dc
        interp.instrumentation_cost += dc
        return nxt

    return step


# ----------------------------------------------------------------------
# superinstructions
# ----------------------------------------------------------------------


def _t_cmp_br(cmp_inst, br_inst, idx: int, targets: Dict[str, int]):
    """compare+branch fused: the latch of every loop, in one call.

    Charges the exact events/costs of the unfused sequence, including
    the step-budget check *between* the halves (with ``frame.ip``
    parked on the branch, so a limit hit resumes exactly there).  The
    flag register is still written — later readers see it.
    """
    pred, dest = cmp_inst.pred, cmp_inst.dest
    lhs, rhs = cmp_inst.lhs, cmp_inst.rhs
    lconst = isinstance(lhs, Constant)
    rconst = isinstance(rhs, Constant)
    cdc = cmp_inst.dynamic_cost
    bdc = br_inst.dynamic_cost
    if_true, if_false = br_inst.if_true, br_inst.if_false
    ti, fi = targets[if_true], targets[if_false]
    bidx = idx + 1
    eq_like = pred in ("eq", "ne")
    rel = operator.eq if pred == "eq" else operator.ne if pred == "ne" else _REL[pred]

    # The two latch shapes worth specializing: ``cmp %i, %n`` and
    # ``cmp %i, <const>``.
    if not lconst and not rconst:

        def step(interp, frame, _f=rel, _l=lhs, _r=rhs, _d=dest,
                 _cdc=cdc, _bdc=bdc, _t=if_true, _e=if_false,
                 _ti=ti, _fi=fi):
            regs = frame.regs
            try:
                a = regs[_l]
                b = regs[_r]
            except KeyError:
                a = regs.get(_l, 0)
                b = regs.get(_r, 0)
            if eq_like or not (isinstance(a, Pointer) or isinstance(b, Pointer)):
                r = 1 if _f(a, b) else 0
            else:
                frame.ip = idx
                r = _slow_cmp(interp, pred, a, b)
            regs[_d] = r
            interp.events += 1
            interp.cost += _cdc
            if interp.events >= interp.max_steps:
                frame.ip = bidx
                raise ExecutionLimit(
                    f"exceeded {interp.max_steps} dynamic instructions"
                )
            frame.ip = 0
            interp.events += 1
            interp.cost += _bdc
            if r:
                frame.block = _t
                return _ti
            frame.block = _e
            return _fi

        return step
    if not lconst and rconst:
        rv = rhs.value

        def step(interp, frame, _f=rel, _l=lhs, _rv=rv, _d=dest,
                 _cdc=cdc, _bdc=bdc, _t=if_true, _e=if_false,
                 _ti=ti, _fi=fi):
            regs = frame.regs
            try:
                a = regs[_l]
            except KeyError:
                a = 0
            if eq_like or not isinstance(a, Pointer):
                r = 1 if _f(a, _rv) else 0
            else:
                frame.ip = idx
                r = _slow_cmp(interp, pred, a, _rv)
            regs[_d] = r
            interp.events += 1
            interp.cost += _cdc
            if interp.events >= interp.max_steps:
                frame.ip = bidx
                raise ExecutionLimit(
                    f"exceeded {interp.max_steps} dynamic instructions"
                )
            frame.ip = 0
            interp.events += 1
            interp.cost += _bdc
            if r:
                frame.block = _t
                return _ti
            frame.block = _e
            return _fi

        return step

    get_l = _operand(lhs)
    get_r = _operand(rhs)

    def step(interp, frame, _f=rel, _l=get_l, _r=get_r, _ti=ti, _fi=fi):
        a = _l(frame)
        b = _r(frame)
        if eq_like or not (isinstance(a, Pointer) or isinstance(b, Pointer)):
            r = 1 if _f(a, b) else 0
        else:
            frame.ip = idx
            r = _slow_cmp(interp, pred, a, b)
        frame.regs[dest] = r
        interp.events += 1
        interp.cost += cdc
        if interp.events >= interp.max_steps:
            frame.ip = bidx
            raise ExecutionLimit(
                f"exceeded {interp.max_steps} dynamic instructions"
            )
        frame.ip = 0
        interp.events += 1
        interp.cost += bdc
        if r:
            frame.block = if_true
            return _ti
        frame.block = if_false
        return _fi

    return step


def _t_ckpt_store(ck_inst, st_inst, idx: int, nxt: int):
    """checkpoint+store fused for same-address pairs.

    Encore instrumentation places ``ckpt_mem x`` immediately before
    ``store x``; the pair resolves the address once (the checkpoint
    mutates no register or stack state, so the second resolution is
    provably identical) and reads/writes the cell back to back.
    """
    rid = ck_inst.region_id
    cdc = ck_inst.dynamic_cost
    sdc = st_inst.dynamic_cost
    resolve = _resolver(ck_inst.ref)
    get_v = _operand(st_inst.value)
    sidx = idx + 1

    def step(interp, frame, _resolve=resolve, _v=get_v):
        # One resolve and one bounds check serve both halves: the push
        # mutates no register or stack state, so the store's address is
        # provably the checkpoint's, and a successful read guarantees
        # the write at the same index succeeds.
        try:
            name, index = _resolve(interp, frame)
            cells = interp._mem_cells.get(name)
            if cells is None:
                raise Trap(f"read from dead object {name!r}", interp.events)
            if 0 <= index < len(cells):
                value = cells[index]
            else:
                raise Trap(
                    f"read out of bounds: {name}[{index}] "
                    f"(size {len(cells)})",
                    interp.events,
                )
        except BaseException:
            frame.ip = idx
            raise
        record = ("mem", name, index, value)
        log = frame.region_ckpts.get(rid)
        if log is None:
            log = frame.region_ckpts[rid] = []
        log.append(record)
        guard_cost = interp.guard.on_push(frame, rid, record)
        if guard_cost:
            interp.cost += guard_cost
            interp.instrumentation_cost += guard_cost
        _bump_ckpt_words(interp, frame, rid, log, 2)
        interp.events += 1
        interp.cost += cdc
        interp.instrumentation_cost += cdc
        if interp.events >= interp.max_steps:
            frame.ip = sidx
            raise ExecutionLimit(
                f"exceeded {interp.max_steps} dynamic instructions"
            )
        cells[index] = _v(frame)
        interp.events += 1
        interp.cost += sdc
        return nxt

    return step


# ----------------------------------------------------------------------
# the translate pass
# ----------------------------------------------------------------------


def _t_fell_off(n: int):
    """Stub closure after each block's last slot: the fell-off trap.

    The loop-top budget check has already run (reference ordering:
    budget, then the trap); ``frame.ip`` parks one past the last
    instruction, exactly where the reference leaves it.
    """

    def step(interp, frame, _n=n):
        frame.ip = _n
        raise Trap(f"fell off end of block {frame.block}", interp.events)

    return step


def _t_wild_label(label: str):
    """Stub closure for a branch target that names no block.

    The reference raises a raw ``KeyError`` from its block fetch only
    when the jump is actually *taken*; resolving targets at decode time
    must not change that, so wild labels decode to a slot that defers
    the KeyError to execution (after the loop-top budget check, with
    ``frame.block``/``frame.ip`` already updated by the jump — the
    exact reference state).
    """

    def step(interp, frame, _label=label):
        raise KeyError(_label)

    return step


def _decode_one(inst: Instruction, idx: int, nxt: int, module: Module,
                func_name: str, label: str, targets: Dict[str, int]):
    """One closure for ``inst``.

    ``idx`` is the block-relative instruction index (``frame.ip``
    units, used by every trap path); ``nxt`` is the *flat* index of the
    following slot (the dispatch loop's units, returned on the
    sequential path); ``targets`` maps labels to flat block starts.
    """
    op = inst.opcode
    if op == "binop":
        return _t_binop(inst, idx, nxt)
    if op == "cmp":
        return _t_cmp(inst, idx, nxt)
    if op == "mov":
        return _t_mov(inst, idx, nxt)
    if op == "load":
        return _t_load(inst, idx, nxt)
    if op == "store":
        return _t_store(inst, idx, nxt)
    if op == "br":
        return _t_br(inst, idx, targets)
    if op == "jmp":
        return _t_jmp(inst, idx, targets)
    if op == "call":
        return _t_call(inst, idx, nxt, module, func_name, label)
    if op == "ret":
        return _t_ret(inst, idx, nxt)
    if op == "unop":
        return _t_unop(inst, idx, nxt)
    if op == "select":
        return _t_select(inst, idx, nxt)
    if op == "addrof":
        return _t_addrof(inst, idx, nxt)
    if op == "alloc":
        return _t_alloc(inst, idx, nxt, func_name, label)
    if op == "set_recovery_ptr":
        return _t_set_recovery_ptr(inst, idx, nxt)
    if op == "clear_recovery_ptr":
        return _t_clear_recovery_ptr(inst, idx, nxt)
    if op == "ckpt_reg":
        return _t_ckpt_reg(inst, idx, nxt)
    if op == "ckpt_mem":
        return _t_ckpt_mem(inst, idx, nxt)
    if op == "restore":
        return _t_restore(inst, idx, nxt)
    if op in ("spawn", "join"):
        # Thread ops put the run into scheduler mode, where every step
        # must go through the reference tier (bind/suspend, switch
        # points, blocking joins).  The closure executes *nothing*: it
        # parks ``frame.ip`` on the instruction, flips the engine to
        # the slow tier permanently, and leaves the fast loop so the
        # reference ``_step`` re-executes this very instruction with
        # full semantics.
        def step(interp, frame, _idx=idx):
            frame.ip = _idx
            interp._force_slow = True
            return -1

        return step
    unknown = f"unknown opcode {op}"

    def step(interp, frame):
        frame.ip = idx
        raise Trap(unknown, interp.events)

    return step


def _branch_labels(inst) -> tuple:
    if inst.opcode == "br":
        return (inst.if_true, inst.if_false)
    if inst.opcode == "jmp":
        return (inst.target,)
    return ()


def _decode_function(func, module: Module, fused: Dict[str, int]):
    """Translate one function into a flat closure array.

    Blocks are laid out back to back, each followed by its fell-off
    stub; branch closures return the flat start of their target, so a
    block transition costs no dict probe at run time.  ``starts`` maps
    labels to flat offsets (resume entry, and recovering a
    block-relative ``frame.ip`` on the rare budget-limit exit).
    """
    starts: Dict[str, Tuple[int, int]] = {}
    targets: Dict[str, int] = {}
    offset = 0
    for label, block in func.blocks.items():
        starts[label] = (offset, len(block.instructions))
        targets[label] = offset
        offset += len(block.instructions) + 1  # +1: fell-off stub
    for block in func.blocks.values():
        for inst in block.instructions:
            for label in _branch_labels(inst):
                if label not in targets:
                    targets[label] = offset  # wild-label stub slot
                    offset += 1
    flat: list = [None] * offset
    for label, block in func.blocks.items():
        base = targets[label]
        insts = block.instructions
        n = len(insts)
        for i, inst in enumerate(insts):
            flat[base + i] = _decode_one(
                inst, i, base + i + 1, module, func.name, label, targets
            )
        flat[base + n] = _t_fell_off(n)
        # Superinstruction pass: replace the *first* slot of a fused
        # pair; the second keeps its plain closure so traps, redirects,
        # and step-budget resumes can still enter the pair mid-way.
        i = 0
        while i < n - 1:
            a, b = insts[i], insts[i + 1]
            if (
                a.opcode == "cmp"
                and b.opcode == "br"
                and isinstance(b.cond, VirtualRegister)
                and b.cond == a.dest
                and (a.pred in ("eq", "ne") or a.pred in _REL)
            ):
                flat[base + i] = _t_cmp_br(a, b, i, targets)
                fused["cmp_br"] += 1
                i += 2
                continue
            if a.opcode == "ckpt_mem" and b.opcode == "store" \
                    and a.ref == b.ref:
                flat[base + i] = _t_ckpt_store(a, b, i, base + i + 2)
                fused["ckpt_store"] += 1
                i += 2
                continue
            i += 1
    for label, slot in targets.items():
        if label not in starts:
            flat[slot] = _t_wild_label(label)
    return flat, starts


class DecodedProgram:
    """One module, translated.

    ``code[function]`` is the function's flat closure array;
    ``starts[function][block]`` maps a label to its ``(flat offset,
    instruction count)`` pair.
    """

    __slots__ = ("fingerprint", "code", "starts", "fused")

    def __init__(self, fingerprint: str,
                 code: Dict[str, list],
                 starts: Dict[str, Dict[str, Tuple[int, int]]],
                 fused: Dict[str, int]) -> None:
        self.fingerprint = fingerprint
        self.code = code
        self.starts = starts
        self.fused = fused


def decode_module(module: Module,
                  fingerprint: Optional[str] = None) -> DecodedProgram:
    """Translate every function of ``module`` (no caching)."""
    if fingerprint is None:
        fingerprint = module_fingerprint(module)
    code: Dict[str, list] = {}
    starts: Dict[str, Dict[str, int]] = {}
    fused = {"cmp_br": 0, "ckpt_store": 0}
    for name, func in module.functions.items():
        code[name], starts[name] = _decode_function(func, module, fused)
    return DecodedProgram(fingerprint, code, starts, fused)


def _module_signature(module: Module) -> tuple:
    """Cheap structural identity: catches insert/delete/replace in place.

    This is the fast validity probe for the per-object memo — it sees
    every change that swaps instruction objects or block lists, but not
    in-place *field* rewrites on an existing instruction (e.g.
    copyprop's ``inst.ref = ...``).  Code that does those must call
    :meth:`DecodeCache.invalidate` — the pass manager does so after
    every transform pass.
    """
    parts: list = [len(module.functions)]
    for func in module.functions.values():
        parts.append(func.name)
        for label, block in func.blocks.items():
            insts = block.instructions
            parts.append(id(insts))
            parts.append(len(insts))
            parts.extend(map(id, insts))
    return tuple(parts)


class DecodeCache:
    """Two-level memo for decoded programs.

    Level 1 is a weak per-``Module``-object map validated by
    :func:`_module_signature`; level 2 shares decoded programs across
    content-equal module copies (deepcopies, forked workers) keyed by
    the pipeline's content-hash fingerprint, LRU-bounded.  Decoded
    closures hold no interpreter state, so one program may serve any
    number of concurrent interpreters.
    """

    def __init__(self, max_programs: int = 64) -> None:
        self.max_programs = max_programs
        self._by_module: "weakref.WeakKeyDictionary[Module, tuple]" = (
            weakref.WeakKeyDictionary()
        )
        self._by_fingerprint: "OrderedDict[str, DecodedProgram]" = OrderedDict()
        self.module_hits = 0
        self.fingerprint_hits = 0
        self.decodes = 0

    def program_for(self, module: Module) -> DecodedProgram:
        entry = self._by_module.get(module)
        if entry is not None:
            signature, program = entry
            if signature == _module_signature(module):
                self.module_hits += 1
                return program
        fingerprint = module_fingerprint(module)
        program = self._by_fingerprint.get(fingerprint)
        if program is not None:
            self.fingerprint_hits += 1
            self._by_fingerprint.move_to_end(fingerprint)
        else:
            self.decodes += 1
            program = decode_module(module, fingerprint)
            self._by_fingerprint[fingerprint] = program
            while len(self._by_fingerprint) > self.max_programs:
                self._by_fingerprint.popitem(last=False)
        self._by_module[module] = (_module_signature(module), program)
        return program

    def invalidate(self, module: Module) -> None:
        """Drop the decode bound to this module object.

        Required after in-place instruction *field* mutation, which the
        structural signature cannot see.  The next ``program_for``
        re-fingerprints the (changed) text and decodes fresh.
        """
        self._by_module.pop(module, None)

    def clear(self) -> None:
        self._by_module = weakref.WeakKeyDictionary()
        self._by_fingerprint.clear()
        self.module_hits = self.fingerprint_hits = self.decodes = 0

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "module_hits": self.module_hits,
            "fingerprint_hits": self.fingerprint_hits,
            "decodes": self.decodes,
            "programs": len(self._by_fingerprint),
        }


#: Process-wide cache; forked campaign workers inherit warm entries.
DECODE_CACHE = DecodeCache()


def invalidate_decode(module: Module) -> None:
    """Public hook for code that mutates instruction fields in place."""
    DECODE_CACHE.invalidate(module)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


class FastInterpreter(ReferenceInterpreter):
    """Two-tier engine: pre-decoded fast path, reference slow path.

    Runs decoded closures whenever no hook is installed and no redirect
    is pending; otherwise executes the *inherited* reference ``_step``,
    instruction by instruction, re-checking at every step.  Campaign
    trials (which install ``post_step`` injectors) therefore run on
    reference code paths by construction, while golden runs, baselines,
    and plain executions get template dispatch.

    The same single-run contract as :class:`ReferenceInterpreter`
    applies; see its docstring for what may be shared across runs.
    """

    def __init__(
        self,
        module: Module,
        max_steps: int = 20_000_000,
        pre_step=None,
        post_step=None,
        externals=None,
        metadata_guard: str = "off",
        memory_image: Optional[MachineMemory] = None,
        max_threads: Optional[int] = None,
        quantum: Optional[int] = None,
    ) -> None:
        super().__init__(
            module,
            max_steps=max_steps,
            pre_step=pre_step,
            post_step=post_step,
            externals=externals,
            metadata_guard=metadata_guard,
            memory_image=memory_image,
            max_threads=max_threads,
            quantum=quantum,
        )
        self._program: Optional[DecodedProgram] = None
        # Set by the first spawn/join the decoded code reaches: from
        # then on every step takes the reference tier, so scheduler
        # behaviour is reference behaviour by construction.
        self._force_slow = False
        # Incremental peak_ckpt_words bookkeeping: (frame id, region id)
        # -> words currently logged.  Invalidated whenever a slow-path
        # step (hook code, guard injection) may have touched a log.
        self._ckpt_words: Dict[Tuple[int, int], int] = {}
        self._ckpt_words_ok = True
        # Decoded memory templates probe the cell map directly; the
        # dict object is stable for the life of a ``MachineMemory``.
        self._mem_cells = self.memory._cells

    def resume(self, output_objects=()):
        """Continue execution (e.g. after an externally-handled trap)."""
        program = self._program
        try:
            while not self._finished:
                if (
                    self.pre_step is not None
                    or self.post_step is not None
                    or self._pending_redirect is not None
                    or self._force_slow
                ):
                    self._ckpt_words_ok = False
                    self._step()
                else:
                    if program is None:
                        program = self._program = (
                            DECODE_CACHE.program_for(self.module)
                        )
                    self._run_decoded(program)
        finally:
            # Fast-path closures bank only ``cost`` (plus
            # ``instrumentation_cost`` where it applies); ``app_cost``
            # is the reference invariant cost - instrumentation_cost,
            # settled whenever control leaves the engine.  The slow
            # tier maintains all three exactly, so this is idempotent.
            self.app_cost = self.cost - self.instrumentation_cost
        return ExecResult(
            value=self._return_value,
            events=self.events,
            cost=self.cost,
            app_cost=self.app_cost,
            instrumentation_cost=self.instrumentation_cost,
            output=self.memory.snapshot(output_objects),
        )

    def _run_decoded(self, program: DecodedProgram) -> None:
        """Run decoded code until a frame switch, finish, or exception.

        The inner loop is the entire fast-path dispatch: one bounds
        compare, one step-budget compare, one closure call.  Closures
        return the flat index of the next slot (branches return their
        target's block start; every block ends in a fell-off stub) or
        ``-1`` to leave (call/ret/external — the outer ``resume`` loop
        re-checks hooks there, which is how mid-run hook installation
        switches tiers).
        """
        frame = self.frames[-1]
        maxs = self.max_steps
        # The reference checks the step budget *before* fetching the
        # block, so the budget check must precede the ``starts`` lookup
        # (which raises the same KeyError for a wild resume label).
        if self.events >= maxs:
            raise ExecutionLimit(f"exceeded {maxs} dynamic instructions")
        code = program.code[frame.func.name]
        starts = program.starts[frame.func.name]
        start, size = starts[frame.block]
        if frame.ip > size:
            # Re-entering past the fell-off stub (e.g. resumed after a
            # caught fell-off trap): re-trap like the reference, never
            # run into the next block's slots.
            raise Trap(
                f"fell off end of block {frame.block}", self.events
            )
        ip = start + frame.ip
        while ip >= 0:
            if self.events >= maxs:
                # Park a block-relative ip for the resume contract.
                # Closures keep ``frame.block`` exact at all times, so
                # the subtraction is valid on this rare exit.
                frame.ip = ip - starts[frame.block][0]
                raise ExecutionLimit(
                    f"exceeded {maxs} dynamic instructions"
                )
            ip = code[ip](self, frame)
