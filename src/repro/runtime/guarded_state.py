"""Self-protecting recovery state: checksums, duplication, verified rollback.

Encore's recovery metadata — the checkpoint log, the register-checkpoint
area, and the per-region recovery pointer — lives in plain memory for
the entire region activation.  The paper implicitly assumes that state
is fault-free, but it is exactly the kind of silent-corruption surface
a fault-injection study must cover: a transient that lands in an undo
record makes the *rollback itself* restore garbage, converting a
recoverable fault into silent data corruption while the campaign counts
it as covered.

:class:`RecoveryStateGuard` closes that gap in both directions:

* it is the **fault target** — the SFI engine's metadata faults
  (``FaultPlan.metadata_faults``) strike through
  :meth:`RecoveryStateGuard.inject_fault`, corrupting a live checkpoint
  record or the recovery pointer of the innermost frame that has one;
* it is the **defence** — at guard level ``checksum`` every pushed
  record and every published pointer is sealed with a CRC that is
  re-verified before the rollback consumes it (a mismatch raises
  :class:`MetadataCorruption`, escalating the trial to the reason-coded
  ``metadata_corrupt_detected`` outcome instead of silently restoring
  garbage); at level ``dup`` a shadow copy additionally allows the
  verifier to *repair* the corrupted primary and let recovery proceed.

The guard also performs oracle taint tracking (used for outcome
classification only, never by the protection logic): corrupted records
and pointers are remembered, and a rollback that consumes one without
detection marks the trial so a wrong final output classifies as
``metadata_corrupt_silent`` rather than generic ``sdc``.

Guard work is charged to the interpreter's instrumentation cost in the
paper's dynamic-instruction currency (:data:`SEAL_COST` /
:data:`VERIFY_COST` / :data:`REPAIR_COST`), so the protection-overhead
tradeoff is measurable with the same accounting as the checkpoints
themselves (``benchmarks/bench_guarded_state.py``).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Set, Tuple

from repro.runtime.supervisor import EscalateTrial

#: Guard levels, in increasing protection (and cost) order.
GUARD_LEVELS = ("off", "checksum", "dup")

#: Metadata structures the fault model can strike.
METADATA_TARGETS = ("ckpt_mem", "ckpt_reg", "recovery_ptr")

#: Extra dynamic instructions charged when sealing one record or
#: pointer: a checksum is one fold-and-store; duplication adds the
#: shadow copy's stores on top.
SEAL_COST = {"off": 0, "checksum": 1, "dup": 3}

#: Extra dynamic instructions charged when verifying one record or
#: pointer at rollback time (recompute + compare).
VERIFY_COST = {"off": 0, "checksum": 1, "dup": 1}

#: Extra dynamic instructions charged when repairing a corrupted
#: primary from its shadow copy (``dup`` level only).
REPAIR_COST = 2


class MetadataCorruption(EscalateTrial):
    """The guard detected corrupted recovery metadata at rollback time.

    Subclasses :class:`~repro.runtime.supervisor.EscalateTrial` so the
    detection escalates through the same reason-coded ladder as the
    supervisor's own verdicts: the trial ends *gracefully* with the
    ``metadata_corrupt_detected`` outcome — a controlled restart-
    required signal — instead of restoring garbage state.
    ``structure`` names what failed verification (``checkpoint_log`` or
    ``recovery_ptr``).
    """

    def __init__(self, structure: str) -> None:
        super().__init__("metadata_corrupt_detected")
        self.structure = structure


def metadata_checksum(payload) -> int:
    """The guard's word-level checksum (CRC-32 of the value pattern)."""
    return zlib.crc32(repr(payload).encode())


class RecoveryStateGuard:
    """Checksummed (and optionally duplicated) recovery metadata for one
    interpreter instance.

    The primary copies stay where the paper puts them — the frame's
    checkpoint log (``frame.region_ckpts``) and recovery-pointer slot
    (``frame.recovery_ptr``) — while the guard keeps the seals and
    shadow copies in side tables keyed by ``(frame id, region id)``.
    Frame ids are never reused within one execution, so stale keys
    cannot collide.

    At level ``"off"`` every hook is a near-no-op: no seals are kept
    and no cost is charged, so an unguarded run is bit-identical to the
    pre-guard interpreter.  Taint bookkeeping (pure classification
    oracle) is active at every level.
    """

    def __init__(self, level: str = "off") -> None:
        if level not in GUARD_LEVELS:
            raise ValueError(
                f"unknown guard level {level!r} "
                f"(expected one of {', '.join(GUARD_LEVELS)})"
            )
        self.level = level
        # Seals and shadow copies: (frame id, region id) -> per-entry.
        self._entry_sums: Dict[Tuple[int, int], List[int]] = {}
        self._entry_dups: Dict[Tuple[int, int], List[tuple]] = {}
        # Pointer seals/shadows: frame id -> checksum / copy.
        self._ptr_sums: Dict[int, int] = {}
        self._ptr_dups: Dict[int, Tuple[int, str]] = {}
        # Oracle taint: which primaries the fault model corrupted.
        self._tainted_entries: Set[Tuple[int, int, int]] = set()
        self._tainted_ptrs: Set[int] = set()
        #: Metadata faults that actually landed in live metadata.
        self.metadata_faults = 0
        #: Corrupted records/pointers a rollback consumed undetected.
        self.tainted_consumed = 0
        #: Corruptions the verifier caught (before raising).
        self.detections = 0
        #: Corrupted primaries repaired from their shadow copy.
        self.repairs = 0

    # ------------------------------------------------------------------
    # interpreter hooks (seal on write, verify on rollback)
    # ------------------------------------------------------------------

    def on_publish(self, frame) -> int:
        """``set_recovery_ptr`` executed: seal the fresh pointer and
        reset the published region's entry state."""
        region_id = frame.recovery_ptr[0]
        self.on_reset(frame, region_id)
        self._tainted_ptrs.discard(frame.id)
        if self.level == "off":
            return 0
        self._ptr_sums[frame.id] = metadata_checksum(frame.recovery_ptr)
        if self.level == "dup":
            self._ptr_dups[frame.id] = frame.recovery_ptr
        return SEAL_COST[self.level]

    def on_clear(self, frame, region_id: int) -> int:
        """``clear_recovery_ptr`` matched: drop every seal and taint —
        nothing can roll back into the region any more."""
        self.on_reset(frame, region_id)
        self._tainted_ptrs.discard(frame.id)
        self._ptr_sums.pop(frame.id, None)
        self._ptr_dups.pop(frame.id, None)
        return 0

    def on_reset(self, frame, region_id: int) -> None:
        """The region's checkpoint log was emptied (publish/restore)."""
        key = (frame.id, region_id)
        self._entry_sums.pop(key, None)
        self._entry_dups.pop(key, None)
        self._tainted_entries = {
            taint for taint in self._tainted_entries if taint[:2] != key
        }

    def on_push(self, frame, region_id: int, record: tuple) -> int:
        """``ckpt_reg``/``ckpt_mem`` appended one undo record."""
        if self.level == "off":
            return 0
        key = (frame.id, region_id)
        self._entry_sums.setdefault(key, []).append(metadata_checksum(record))
        if self.level == "dup":
            self._entry_dups.setdefault(key, []).append(record)
        return SEAL_COST[self.level]

    def verify_restore(self, frame, region_id: int) -> Tuple[List[tuple], int]:
        """Verify (and possibly repair) the checkpoint log before a
        restore applies it.

        Returns ``(records, cost)`` with corrupted primaries replaced by
        their repaired shadow copies at level ``dup``.  Raises
        :class:`MetadataCorruption` on an unrepairable mismatch.  With
        the guard off, consuming a tainted record is recorded for the
        ``metadata_corrupt_silent`` classification and the corrupted
        data flows through — exactly the unprotected failure mode.
        """
        records = frame.region_ckpts.get(region_id, [])
        key = (frame.id, region_id)
        if self.level == "off":
            for index in range(len(records)):
                if (frame.id, region_id, index) in self._tainted_entries:
                    self.tainted_consumed += 1
            return list(records), 0
        sums = self._entry_sums.get(key, [])
        dups = self._entry_dups.get(key, [])
        cost = 0
        verified: List[tuple] = []
        for index, record in enumerate(records):
            cost += VERIFY_COST[self.level]
            expected = sums[index] if index < len(sums) else None
            if expected is None or metadata_checksum(record) == expected:
                # Unsealed records (hand-built modules that restore
                # without checkpoint pushes) pass through unverified.
                verified.append(record)
                continue
            if self.level == "dup" and index < len(dups):
                shadow = dups[index]
                if metadata_checksum(shadow) == expected:
                    records[index] = shadow
                    self._tainted_entries.discard((frame.id, region_id, index))
                    self.repairs += 1
                    cost += REPAIR_COST
                    verified.append(shadow)
                    continue
            self.detections += 1
            raise MetadataCorruption("checkpoint_log")
        return verified, cost

    def verify_pointer(self, frame) -> Tuple[Optional[Tuple[int, str]], int]:
        """Verify (and possibly repair) the recovery pointer before a
        rollback follows it.  Same contract as :meth:`verify_restore`.
        """
        ptr = frame.recovery_ptr
        if ptr is None:
            return None, 0
        if self.level == "off":
            if frame.id in self._tainted_ptrs:
                self.tainted_consumed += 1
            return ptr, 0
        cost = VERIFY_COST[self.level]
        expected = self._ptr_sums.get(frame.id)
        if expected is None or metadata_checksum(ptr) == expected:
            return ptr, cost
        if self.level == "dup":
            shadow = self._ptr_dups.get(frame.id)
            if shadow is not None and metadata_checksum(shadow) == expected:
                frame.recovery_ptr = shadow
                self._tainted_ptrs.discard(frame.id)
                self.repairs += 1
                return shadow, cost + REPAIR_COST
        self.detections += 1
        raise MetadataCorruption("recovery_ptr")

    # ------------------------------------------------------------------
    # the fault surface
    # ------------------------------------------------------------------

    def inject_fault(self, interp, target: str, selector: int, bit: int) -> bool:
        """Corrupt live recovery metadata; the SFI metadata fault model.

        Searches frames innermost-first for the first one with a live
        structure of the planned ``target`` kind and flips the planned
        ``bit`` in the entry picked by ``selector`` (modulo the live
        entry count, so the draw is meaningful for any log length).
        Returns ``False`` when no such metadata is live anywhere — the
        fault landed in dead metadata time and is architecturally
        masked, mirroring the dead-register model for program faults.

        Only the *primary* copy is corrupted; seals and shadow copies
        model storage the transient did not strike.
        """
        if target not in METADATA_TARGETS:
            raise ValueError(f"unknown metadata fault target {target!r}")
        from repro.runtime.interpreter import bitflip

        for frame in reversed(interp.frames):
            if target == "recovery_ptr":
                if frame.recovery_ptr is None:
                    continue
                region_id, _label = frame.recovery_ptr
                # A corrupted pointer is a wild branch target: model the
                # flipped address bits as landing on another block of
                # the same function (jumping there skips the restore
                # sequence entirely — the silent-corruption shape).
                labels = list(frame.func.blocks)
                wild = labels[bit % len(labels)] if labels else _label
                frame.recovery_ptr = (region_id, wild)
                self._tainted_ptrs.add(frame.id)
                self.metadata_faults += 1
                return True
            kind = "mem" if target == "ckpt_mem" else "reg"
            live = [
                (region_id, index, record)
                for region_id, records in sorted(frame.region_ckpts.items())
                for index, record in enumerate(records)
                if record[0] == kind
            ]
            if not live:
                continue
            region_id, index, record = live[selector % len(live)]
            if kind == "reg":
                _, reg, value = record
                corrupted = ("reg", reg, bitflip(value, bit))
            elif bit >= 48:
                # High bit draws strike the saved *address* word: the
                # restore then writes the old value to the wrong cell
                # (possibly out of bounds — a visible trap symptom).
                _, name, addr, value = record
                corrupted = ("mem", name, addr ^ (1 << (bit % 16)), value)
            else:
                _, name, addr, value = record
                corrupted = ("mem", name, addr, bitflip(value, bit))
            frame.region_ckpts[region_id][index] = corrupted
            self._tainted_entries.add((frame.id, region_id, index))
            self.metadata_faults += 1
            return True
        return False
