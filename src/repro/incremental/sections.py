"""Sectioning and outcome attribution for incremental SFI campaigns.

A *section* is one (function, region) slice of a workload's fault-site
space: every dynamic instruction of the golden run belongs to the
section named by the function it executed in and the recovery region
that was live at that instant (``f@r0``, ``f@r1``, ... in first-
appearance order, ``f@-`` outside any protected region).  Fault sites
past the last register-writing event belong to the synthetic
``@dead`` section — an injection planned there never strikes.

Sections are keyed by **content-hash fingerprints** of their owning
function (the PR 3 discipline), so after an edit the store can tell
exactly which sections' persisted outcome distributions are stale.
Region ids are assigned by a module-global counter at instrumentation
time and therefore shift across functions when any one function is
recompiled; :func:`normalized_function_text` renumbers them to
function-local ordinals before hashing so a function's fingerprint
depends only on its own text.

:func:`capture_attribution` runs the golden execution once under the
reference interpreter and records, per dynamic event, everything the
incremental planner and the bit-level analytic classifier need:

* the section the event belongs to (= the section a fault injected
  there is attributed to),
* whether the instruction writes a register (only those events are
  injection sites),
* whether a recovery pointer was live at the event's post-step (the
  exact predicate ``request_rollback`` evaluates when a detection
  deadline fires there), and
* the static coordinate of the instruction, for dead-bit-mask lookup.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.ir.printer import function_to_text
from repro.runtime.engine import make_interpreter
from repro.runtime.interpreter import ExecResult

#: Synthetic section for fault sites past the last register-writing
#: event: the planned injection never strikes (dead time), so the
#: outcome is exactly ``masked`` with no trial needed.
DEAD_SECTION = "@dead"

#: Region ids leak into instrumented text in exactly these shapes: the
#: ``r<id>`` operand of the five instrumentation opcodes, and the
#: ``__encore_rec_<id>`` / ``__encore_entry_<id>`` labels.  Registers
#: print as ``%name``, so a bare ``r<digits>`` after these opcodes is
#: unambiguous.
_REGION_TOKEN = re.compile(
    r"(__encore_(?:rec|entry)_"
    r"|(?:set_recovery_ptr|clear_recovery_ptr|ckpt_reg|ckpt_mem|restore) r)"
    r"(\d+)"
)


class IncrementalError(ValueError):
    """The incremental store or campaign configuration is unusable."""


def normalized_function_text(func) -> str:
    """The function's textual IR with region ids renumbered to
    function-local ordinals (by first textual appearance).

    Region ids come from a module-global counter, so recompiling one
    function shifts the ids embedded in every *other* function's
    instrumentation.  Hashing the normalized text makes a function's
    fingerprint a pure function of its own code.
    """
    mapping: Dict[str, str] = {}

    def rename(match: "re.Match[str]") -> str:
        ordinal = mapping.setdefault(match.group(2), str(len(mapping)))
        return match.group(1) + ordinal

    return _REGION_TOKEN.sub(rename, function_to_text(func))


def section_fingerprint(func) -> str:
    """Content hash of one function, stable under region-id shifts."""
    return hashlib.sha256(
        normalized_function_text(func).encode("utf-8")
    ).hexdigest()[:16]


def module_fingerprints(module: Module) -> Dict[str, str]:
    """``{function name: section fingerprint}`` for a whole module."""
    return {func.name: section_fingerprint(func) for func in module}


def region_ordinals(func) -> Dict[int, int]:
    """Map global region ids to function-local ordinals.

    Ordinals follow first textual appearance — the same order
    :func:`normalized_function_text` assigns — so section names like
    ``f@r0`` are stable across recompilations that shift global ids.
    """
    mapping: Dict[int, int] = {}
    for match in _REGION_TOKEN.finditer(function_to_text(func)):
        rid = int(match.group(2))
        mapping.setdefault(rid, len(mapping))
    return mapping


@dataclasses.dataclass
class SectionProfile:
    """Golden-run attribution of one workload's fault-site space.

    Parallel arrays over the ``events`` dynamic instructions of the
    golden run; ``section_names`` / ``keys`` are intern tables indexed
    by ``event_section`` / ``event_key``.  ``live[i]`` is the liveness
    of the top frame's recovery pointer at event *i*'s post-step —
    exactly what ``RecoverySupervisor.request_rollback`` consults when
    a detection deadline fires there.  ``mask_valid[i]`` is False for
    boundary events (call/ret) where the injector's destination frame
    differs from the event's frame: static dead-bit masks do not
    describe those injections, so they are never pruned.
    """

    events: int
    section_names: List[str]
    event_section: List[int]
    has_defs: List[bool]
    live: List[bool]
    keys: List[Tuple[str, str, int]]
    event_key: List[int]
    mask_valid: List[bool]
    fingerprints: Dict[str, str]
    golden: ExecResult

    def __post_init__(self) -> None:
        # Sites roll forward to the next register-writing event: the
        # injector strikes the first post-step >= site whose
        # instruction has a destination register.
        self.defs_events: List[int] = [
            i for i in range(self.events) if self.has_defs[i]
        ]
        # live_prefix[i] = number of live post-steps among events < i.
        prefix = [0]
        for flag in self.live:
            prefix.append(prefix[-1] + (1 if flag else 0))
        self.live_prefix: List[int] = prefix

    # -- site attribution ------------------------------------------------

    def injection_event(self, site: int) -> Optional[int]:
        """The event a fault planned at ``site`` actually strikes."""
        import bisect

        pos = bisect.bisect_left(self.defs_events, site)
        if pos >= len(self.defs_events):
            return None  # dead time: the plan never fires
        return self.defs_events[pos]

    def section_of_site(self, site: int) -> str:
        event = self.injection_event(site)
        if event is None:
            return DEAD_SECTION
        return self.section_names[self.event_section[event]]

    def site_weight(self, event: int) -> int:
        """How many of the ``events`` uniform sites roll to ``event``."""
        import bisect

        pos = bisect.bisect_left(self.defs_events, event)
        if pos >= len(self.defs_events) or self.defs_events[pos] != event:
            return 0
        prev = self.defs_events[pos - 1] if pos > 0 else -1
        return event - prev

    def section_weights(self) -> Dict[str, int]:
        """Site mass per section (counts of uniform sites), including
        the dead-time pseudo-section.  Sums to ``events``."""
        weights: Dict[str, int] = {}
        for event in self.defs_events:
            name = self.section_names[self.event_section[event]]
            weights[name] = weights.get(name, 0) + self.site_weight(event)
        dead = self.events - sum(weights.values())
        if dead:
            weights[DEAD_SECTION] = dead
        return weights

    def section_events(self) -> Dict[str, List[int]]:
        """Register-writing events per section, in event order."""
        table: Dict[str, List[int]] = {}
        for event in self.defs_events:
            name = self.section_names[self.event_section[event]]
            table.setdefault(name, []).append(event)
        return table

    def live_count(self, lo: int, hi: int) -> int:
        """Live post-steps among events in ``[lo, hi]`` (clamped)."""
        lo = max(lo, 0)
        hi = min(hi, self.events - 1)
        if hi < lo:
            return 0
        return self.live_prefix[hi + 1] - self.live_prefix[lo]


def capture_attribution(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    externals=None,
    max_steps: int = 5_000_000,
    threads: int = 1,
    quantum: Optional[int] = None,
) -> SectionProfile:
    """Run the golden execution once, recording per-event attribution.

    The hook pins execution to the reference tier; the engines are
    bit-identical, so the ``golden`` result embedded in the profile is
    valid for classifying trials run under either engine.
    """
    ordinals = {func.name: region_ordinals(func) for func in module}
    names: List[str] = []
    name_index: Dict[str, int] = {}
    keys: List[Tuple[str, str, int]] = []
    key_index: Dict[Tuple[str, str, int], int] = {}
    event_section: List[int] = []
    event_key: List[int] = []
    has_defs: List[bool] = []
    live: List[bool] = []
    mask_valid: List[bool] = []

    def intern_name(name: str) -> int:
        idx = name_index.get(name)
        if idx is None:
            idx = name_index[name] = len(names)
            names.append(name)
        return idx

    def post_step(interp, event) -> None:
        frames = interp.frames
        is_live = bool(frames) and frames[-1].recovery_ptr is not None
        if is_live:
            owner = frames[-1].func.name
            rid = frames[-1].recovery_ptr[0]
            ordinal = ordinals.get(owner, {}).get(rid)
            tag = f"r{ordinal}" if ordinal is not None else f"r?{rid}"
            section = f"{event.func}@{tag}"
        else:
            section = f"{event.func}@-"
        event_section.append(intern_name(section))
        key = (event.func, event.block, event.inst_index)
        idx = key_index.get(key)
        if idx is None:
            idx = key_index[key] = len(keys)
            keys.append(key)
        event_key.append(idx)
        has_defs.append(bool(event.inst.defs()))
        live.append(is_live)
        # The injector flips the destination in *current_frame*; at a
        # call boundary that is the callee's fresh frame, not the frame
        # that owns the destination register — static dead-bit masks do
        # not describe such a strike, so it must never be pruned.
        mask_valid.append(bool(frames) and frames[-1].id == event.frame_id)

    interp = make_interpreter(
        module, max_steps=max_steps, post_step=post_step,
        externals=externals, max_threads=threads, quantum=quantum,
    )
    golden = interp.run(function, args, output_objects=output_objects)
    if golden.events != len(live):
        raise IncrementalError(
            f"attribution capture saw {len(live)} post-steps but the "
            f"golden run reports {golden.events} events"
        )
    return SectionProfile(
        events=golden.events,
        section_names=names,
        event_section=event_section,
        has_defs=has_defs,
        live=live,
        keys=keys,
        event_key=event_key,
        mask_valid=mask_valid,
        fingerprints=module_fingerprints(module),
        golden=golden,
    )


def section_function(section: str) -> Optional[str]:
    """The function a section belongs to (None for ``@dead``)."""
    if section == DEAD_SECTION:
        return None
    return section.rsplit("@", 1)[0]


# ---------------------------------------------------------------------------
# The persistent per-section outcome store
# ---------------------------------------------------------------------------

STORE_VERSION = 1

#: How a section's distribution was obtained.  ``empirical`` — every
#: trial executed (full-campaign attribution); ``pruned`` — live mass
#: executed under importance sampling, statically-dead mass classified
#: analytically; ``analytic`` — no execution at all (dead time).
ESTIMATORS = ("empirical", "pruned", "analytic")


@dataclasses.dataclass
class SectionRecord:
    """One section's persisted outcome distribution.

    ``counts`` holds (possibly fractional) outcome mass summing to
    ``n``; ``executed`` is how many trials actually ran to produce it
    (< ``n`` under pruning, 0 for analytic sections).
    ``live_counts``/``live_n`` keep the executed sub-distribution
    separate so composition can compute sampling variance without
    mixing in the zero-variance analytic mass.
    """

    fingerprint: str
    weight: int
    n: float
    executed: int
    counts: Dict[str, float]
    estimator: str = "empirical"
    pruned_fraction: float = 0.0
    live_counts: Dict[str, float] = dataclasses.field(default_factory=dict)
    live_n: int = 0

    def probability(self, outcome: str) -> float:
        if self.n <= 0:
            return 0.0
        return self.counts.get(outcome, 0.0) / self.n

    def covered_probability(self) -> float:
        from repro.runtime.sfi import COVERED_OUTCOMES

        return sum(self.probability(o) for o in COVERED_OUTCOMES)

    def variance(self, outcomes: Sequence[str]) -> float:
        """Sampling variance of this section's probability estimate for
        the union of ``outcomes``.

        The analytic (statically classified) mass is exact and
        contributes zero variance; only the executed sub-sample is
        random, down-weighted by its share of the section's fault mass
        — the Horvitz–Thompson correction for the pruned design.
        """
        if self.estimator == "analytic" or self.n <= 0:
            return 0.0
        if self.estimator == "pruned":
            if self.live_n <= 0:
                return 0.0
            live_p = sum(
                self.live_counts.get(o, 0.0) for o in outcomes
            ) / self.live_n
            live_p = min(max(live_p, 0.0), 1.0)
            live_share = 1.0 - self.pruned_fraction
            return (live_share ** 2) * live_p * (1.0 - live_p) / self.live_n
        samples = max(self.executed, 1)
        p = sum(self.probability(o) for o in outcomes)
        p = min(max(p, 0.0), 1.0)
        return p * (1.0 - p) / samples

    def to_json(self) -> Dict[str, Any]:
        data = {
            "fingerprint": self.fingerprint,
            "weight": self.weight,
            "n": self.n,
            "executed": self.executed,
            "counts": self.counts,
            "estimator": self.estimator,
        }
        if self.estimator == "pruned":
            data["pruned_fraction"] = self.pruned_fraction
            data["live_counts"] = self.live_counts
            data["live_n"] = self.live_n
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SectionRecord":
        return cls(
            fingerprint=data["fingerprint"],
            weight=int(data["weight"]),
            n=data["n"],
            executed=int(data["executed"]),
            counts=dict(data["counts"]),
            estimator=data.get("estimator", "empirical"),
            pruned_fraction=float(data.get("pruned_fraction", 0.0)),
            live_counts=dict(data.get("live_counts", {})),
            live_n=int(data.get("live_n", 0)),
        )


class SectionStore:
    """Fingerprint-keyed persistence of per-section outcome
    distributions, layered on the :class:`~repro.pipeline.AnalysisCache`.

    The JSON file on disk holds the durable distributions; the attached
    ``AnalysisCache`` memoizes the expensive module-keyed analysis
    products (attribution profiles, bit-liveness masks) for the life of
    the process, keyed by the same content-hash discipline — re-running
    ``inject --incremental`` in one process never re-derives masks for
    a module text it has already analyzed.
    """

    def __init__(self, path: str, cache=None) -> None:
        from repro.pipeline import AnalysisCache

        self.path = path
        self.cache = cache if cache is not None else AnalysisCache()
        self.campaign: Dict[str, Any] = {}
        self.basis_trials: int = 0
        self.sections: Dict[str, SectionRecord] = {}
        self.loaded = False

    @classmethod
    def open(cls, path: str, cache=None) -> "SectionStore":
        store = cls(path, cache=cache)
        if os.path.exists(path):
            store.load()
        return store

    def load(self) -> None:
        with open(self.path, encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("kind") != "incremental-store":
            raise IncrementalError(f"{self.path} is not an incremental store")
        if data.get("version") != STORE_VERSION:
            raise IncrementalError(
                f"store version {data.get('version')} != {STORE_VERSION}"
            )
        self.campaign = data.get("campaign", {})
        self.basis_trials = int(data.get("basis_trials", 0))
        self.sections = {
            name: SectionRecord.from_json(record)
            for name, record in data.get("sections", {}).items()
        }
        self.loaded = True

    def save(self) -> None:
        payload = {
            "kind": "incremental-store",
            "version": STORE_VERSION,
            "campaign": self.campaign,
            "basis_trials": self.basis_trials,
            "sections": {
                name: self.sections[name].to_json()
                for name in sorted(self.sections)
            },
        }
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)
        # The in-memory store now mirrors disk: a later campaign against
        # this same handle composes instead of rebuilding.
        self.loaded = True

    def validate_campaign(self, identity: Dict[str, Any]) -> None:
        """Refuse to compose distributions from a different campaign.

        Mirrors the journal's symmetric union rule: any key present on
        either side must agree.
        """
        if not self.loaded:
            return
        mismatched = [
            key for key in sorted(set(self.campaign) | set(identity))
            if self.campaign.get(key) != identity.get(key)
        ]
        if mismatched:
            detail = ", ".join(
                f"{key}: store={self.campaign.get(key)!r} != "
                f"campaign={identity.get(key)!r}"
                for key in mismatched
            )
            raise IncrementalError(
                f"incremental store {self.path} belongs to a different "
                f"campaign ({detail}); delete it or match the flags"
            )


def campaign_identity(
    function: str,
    args: Sequence,
    output_objects: Sequence[str],
    seed: int,
    detector,
    max_attempts: int,
) -> Dict[str, Any]:
    """Everything (besides the module text) that determines per-section
    plans and outcome classification — the store's compatibility key."""
    return {
        "function": function,
        "args": [int(a) for a in args],
        "output_objects": list(output_objects),
        "seed": seed,
        "detector": {
            "dmax": detector.dmax,
            "kind": detector.kind,
            "coverage": detector.coverage,
        },
        "max_attempts": max_attempts,
    }
