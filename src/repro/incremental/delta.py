"""Incremental re-injection: diff, re-inject changed sections, compose.

The FastFlip-style workflow (PAPERS.md): a first ``inject
--incremental`` run executes a **full** campaign and persists its
outcome distribution *per section* in a :class:`SectionStore`.  After
an edit, the next run diffs per-function content-hash fingerprints
against the store, re-injects **only the changed sections** — through
the existing serial/pool paths, from per-section sha256 substreams —
and composes unchanged sections' persisted distributions into the
final result.  When nothing changed, composition reproduces the full
campaign's aggregate distribution exactly (the stored counts are the
full campaign's integer tallies, pooled back over the same total).

Re-injected sections use the bit-level pruning of
:mod:`repro.incremental.bitmask`: trials are importance-sampled from
the section's *live* (site, bit) mass only, and the provably-dead mass
is folded in analytically, giving a Horvitz–Thompson-corrected
estimate whose variance shrinks by the live share — fewer executed
trials for the same confidence width.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.runtime.detection import DetectionModel
from repro.runtime.memory import MachineMemory
from repro.runtime.sfi import (
    COVERED_OUTCOMES,
    CampaignResult,
    FaultPlan,
    TrialResult,
    plan_campaign,
    plan_trial,
    run_campaign,
    run_planned_trial,
)
from repro.runtime.supervisor import SupervisorPolicy

from repro.incremental.bitmask import build_sampler, cached_dead_masks
from repro.incremental.sections import (
    DEAD_SECTION,
    IncrementalError,
    SectionProfile,
    SectionRecord,
    SectionStore,
    campaign_identity,
    capture_attribution,
    section_function,
)


def derive_section_trial_seed(seed: int, section: str, k: int) -> int:
    """Key the *k*-th trial of one section's private RNG substream.

    Parallel to :func:`repro.runtime.sfi.derive_trial_seed` but keyed
    by section name instead of global trial index, so a section's
    plans do not depend on which *other* sections happen to need
    re-injection — the property that makes incremental runs
    bit-deterministic across edits and across ``--jobs``.
    """
    digest = hashlib.sha256(f"sfi-sec:{seed}:{section}:{k}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass
class ComposedCampaign(CampaignResult):
    """A campaign result assembled from executed and composed sections.

    ``trials`` holds only the trials this run actually executed;
    aggregate ``fraction``/``covered_fraction``/``summary`` figures are
    the **pooled composition** over every section record (executed,
    analytic, and store-composed alike), so a compose-from-store run
    over an unchanged module reports exactly the stored full
    campaign's distribution.  ``coverage_interval`` switches to the
    weight-stratified Horvitz–Thompson estimator (see
    ``docs/incremental.md``).
    """

    section_records: Dict[str, SectionRecord] = dataclasses.field(
        default_factory=dict
    )
    #: Per-section provenance: ``built`` (full-campaign attribution),
    #: ``composed`` (reused from the store), ``reinjected`` (executed
    #: this run under pruning), ``analytic`` (no execution needed).
    section_status: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: Site mass per section in the *current* golden run.
    site_mass: Dict[str, int] = dataclasses.field(default_factory=dict)
    total_sites: int = 0
    executed_trials: int = 0

    # -- pooled composition ----------------------------------------------

    def pooled_counts(self) -> Tuple[Dict[str, float], float]:
        counts: Dict[str, float] = {}
        total = 0.0
        for record in self.section_records.values():
            total += record.n
            for outcome, mass in record.counts.items():
                counts[outcome] = counts.get(outcome, 0.0) + mass
        return counts, total

    def fraction(self, outcome: str) -> float:
        counts, total = self.pooled_counts()
        if total <= 0:
            return 0.0
        return counts.get(outcome, 0.0) / total

    def coverage_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Stratified covered-fraction estimate and CI half-width.

        Sections are strata weighted by their share of the current
        golden run's fault-site mass; analytic mass contributes zero
        variance and pruned sections only their live sub-sample's —
        the Horvitz–Thompson correction for the pruned design.
        """
        if self.total_sites <= 0:
            return 0.0, 0.0
        estimate = 0.0
        variance = 0.0
        sampled = 0.0
        for name, record in self.section_records.items():
            share = self.site_mass.get(name, 0) / self.total_sites
            if share <= 0.0:
                continue
            if name == DEAD_SECTION:
                # Dead-time sites never strike: masked with probability
                # exactly 1, regardless of the (possibly empty) record.
                estimate += share
                sampled += share
                continue
            if record.n <= 0:
                # A zero-trial stratum carries no estimate; its mass is
                # imputed the sampled strata's mean below (collapsed-
                # strata renormalization).
                continue
            sampled += share
            estimate += share * record.covered_probability()
            variance += (share ** 2) * record.variance(COVERED_OUTCOMES)
        if sampled <= 0.0:
            return 0.0, 0.0
        return estimate / sampled, z * (variance ** 0.5) / sampled

    def section_table(self) -> List[Dict[str, Any]]:
        """Per-section rows for ``--by-section`` reporting."""
        rows = []
        for name in sorted(self.section_records):
            record = self.section_records[name]
            rows.append({
                "section": name,
                "status": self.section_status.get(name, "?"),
                "estimator": record.estimator,
                "weight": self.site_mass.get(name, 0),
                "n": record.n,
                "executed": record.executed,
                "pruned": record.pruned_fraction,
                "covered": record.covered_probability(),
            })
        return rows


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise IncrementalError(message)


def validate_incremental_config(
    faults_per_trial: int = 1,
    recovery_faults_per_trial: int = 0,
    metadata_faults_per_trial: int = 0,
    cf_faults_per_trial: int = 0,
    metadata_guard: str = "off",
    detector_backend: str = "model",
    threads: int = 1,
    policy: Optional[SupervisorPolicy] = None,
) -> None:
    """Refuse configurations the analytic classifier cannot describe.

    Pruning and composition rest on the single-event-upset model with
    modeled detection: exactly one register fault per trial, no
    recovery-window / metadata / control-flow surfaces, no metadata
    guard, single-threaded scheduling, and no per-attempt step budget
    (the soundness argument assumes a rollback always completes).
    """
    _require(
        faults_per_trial == 1,
        "--incremental requires faults_per_trial == 1 "
        "(single-event-upset model)",
    )
    _require(
        recovery_faults_per_trial == 0
        and metadata_faults_per_trial == 0
        and cf_faults_per_trial == 0,
        "--incremental supports only the primary register-fault surface "
        "(no recovery/metadata/control-flow faults)",
    )
    _require(
        metadata_guard == "off",
        "--incremental requires --guard off",
    )
    _require(
        detector_backend == "model",
        "--incremental requires the modeled detector backend "
        "(replay latencies are measured, not analytic)",
    )
    _require(threads == 1, "--incremental requires threads == 1")
    if policy is not None:
        _require(
            policy.attempt_step_budget is None,
            "--incremental requires an unbounded attempt step budget",
        )


def _cached_attribution(
    module: Module,
    store: SectionStore,
    function: str,
    args: Sequence,
    output_objects: Sequence[str],
    externals,
    threads: int,
    quantum: Optional[int],
) -> SectionProfile:
    factory = lambda: capture_attribution(  # noqa: E731
        module, function=function, args=args,
        output_objects=output_objects, externals=externals,
        threads=threads, quantum=quantum,
    )
    if externals:
        # External handlers are opaque state; don't memoize across them.
        return factory()
    from repro.pipeline import module_fingerprint

    key = (
        module_fingerprint(module), "sfi-attribution", function,
        tuple(int(a) for a in args), tuple(output_objects),
    )
    return store.cache.get_or_create(key, factory)


def _section_fingerprint(
    section: str, profile: SectionProfile, module_fp: str
) -> str:
    """The identity a section's stored record is keyed by.

    Real sections key on their owning function's normalized content
    hash.  The ``@dead`` pseudo-section's mass is a property of the
    whole golden stream, so it keys on the full module fingerprint —
    any edit anywhere invalidates it (recomputing it is free).
    """
    owner = section_function(section)
    if owner is None:
        return module_fp
    return profile.fingerprints.get(owner, "?")


def _section_budget(
    trials: int, weight: int, total: int, min_section_trials: int
) -> int:
    """A changed section's total estimate mass: its proportional share
    of the full-campaign budget, floored so tiny sections still get a
    usable sample."""
    share = int(round(trials * weight / max(total, 1)))
    return max(min_section_trials, share, 1)


def run_incremental_campaign(
    module: Module,
    store: SectionStore,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    detector: Optional[DetectionModel] = None,
    trials: int = 200,
    seed: int = 0,
    externals=None,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    progress=None,
    policy: Optional[SupervisorPolicy] = None,
    trial_timeout: Optional[float] = None,
    max_pool_retries: int = 2,
    on_result: Optional[Callable[[int, TrialResult], None]] = None,
    on_start: Optional[Callable[[Dict[str, Any]], None]] = None,
    engine: Optional[str] = None,
    min_section_trials: int = 8,
    update_store: bool = True,
    threads: int = 1,
    quantum: Optional[int] = None,
) -> ComposedCampaign:
    """One incremental campaign against ``store``.

    First run (empty store): executes a full campaign, attributes every
    trial to its section, persists the per-section tallies, and returns
    the full result (``composed_fraction == 0``).  Later runs: diffs
    section fingerprints, re-injects only changed sections under
    bit-level pruning, composes the rest from the store.

    ``on_start`` fires once, after diffing but before any trial
    executes, with the run's incremental metadata — the CLI uses it to
    write the journal header.  ``on_result`` streams executed trials
    (section-attributed) exactly like ``run_campaign``.
    """
    detector = detector or DetectionModel()
    policy = policy or SupervisorPolicy()
    validate_incremental_config(threads=threads, policy=policy)
    identity = campaign_identity(
        function, args, output_objects, seed, detector, policy.max_attempts
    )
    store.validate_campaign(identity)

    from repro.pipeline import module_fingerprint

    module_fp = module_fingerprint(module)[:16]
    start = time.monotonic()
    profile = _cached_attribution(
        module, store, function, args, output_objects, externals,
        threads, quantum,
    )
    masks = cached_dead_masks(module, store.cache, output_objects)
    weights = profile.section_weights()
    events_by_section = profile.section_events()
    total_sites = profile.events

    if not store.loaded or not store.sections:
        return _build_store(
            module, store, profile, identity, module_fp, weights,
            total_sites, function=function, args=args,
            output_objects=output_objects, detector=detector,
            trials=trials, seed=seed, externals=externals, jobs=jobs,
            chunk_size=chunk_size, progress=progress, policy=policy,
            trial_timeout=trial_timeout, max_pool_retries=max_pool_retries,
            on_result=on_result, on_start=on_start, engine=engine,
            update_store=update_store, threads=threads, quantum=quantum,
            start=start,
        )

    # ---- diff ------------------------------------------------------------
    records: Dict[str, SectionRecord] = {}
    status: Dict[str, str] = {}
    changed: List[str] = []
    for section, weight in weights.items():
        fingerprint = _section_fingerprint(section, profile, module_fp)
        old = store.sections.get(section)
        # A stored record with n == 0 is still faithful — the store's
        # basis campaign allocated that section zero trials — so it
        # composes as zero trial mass; only a fingerprint mismatch (or
        # a section the store has never seen) forces re-injection.
        usable = old is not None and old.fingerprint == fingerprint
        if usable:
            records[section] = dataclasses.replace(old, weight=weight)
            status[section] = "composed"
        else:
            changed.append(section)

    # ---- plan changed sections ------------------------------------------
    samplers = {}
    plan_rows: List[Tuple[str, FaultPlan]] = []
    next_index = 0
    for section in sorted(changed):
        weight = weights[section]
        budget = _section_budget(trials, weight, total_sites,
                                 min_section_trials)
        fingerprint = _section_fingerprint(section, profile, module_fp)
        if section == DEAD_SECTION:
            # Sites past the last register write never strike: exactly
            # masked, no trial needed.
            records[section] = SectionRecord(
                fingerprint=fingerprint, weight=weight, n=float(budget),
                executed=0, counts={"masked": float(budget)},
                estimator="analytic",
            )
            status[section] = "analytic"
            continue
        sampler = build_sampler(
            section, events_by_section[section], profile, masks, detector
        )
        samplers[section] = (sampler, budget, fingerprint)
        if sampler.live_mass == 0:
            # Every (site, bit) of the section is provably dead.
            records[section] = SectionRecord(
                fingerprint=fingerprint, weight=weight, n=float(budget),
                executed=0,
                counts={
                    o: budget * p for o, p in sampler.analytic.items()
                },
                estimator="analytic",
                pruned_fraction=1.0,
            )
            status[section] = "analytic"
            continue
        executed = max(1, int(round(budget * (1.0 - sampler.pruned_fraction))))
        for k in range(executed):
            plan = plan_trial(
                seed, next_index, profile.events, detector,
                site_dist=sampler,
                rng_seed=derive_section_trial_seed(seed, section, k),
            )
            plan_rows.append((section, plan))
            next_index += 1

    composed_mass = sum(
        weights[s] for s, st in status.items() if st == "composed"
    )
    composed_fraction = (
        composed_mass / total_sites if total_sites else 0.0
    )
    reinjected = sorted(section for section, _ in plan_rows)
    if on_start is not None:
        on_start({
            "mode": "compose",
            "composed_sections": sum(
                1 for st in status.values() if st == "composed"
            ),
            "reinjected_sections": sorted(set(reinjected)),
            "composed_fraction": round(composed_fraction, 9),
        })

    # ---- execute ---------------------------------------------------------
    section_of_index = {
        plan.trial_index: section for section, plan in plan_rows
    }

    def emit(index: int, trial: TrialResult) -> None:
        trial.section = section_of_index.get(index)
        if on_result is not None:
            on_result(index, trial)

    plans = [plan for _, plan in plan_rows]
    results: List[TrialResult] = []
    jobs_used = 1
    worker_trials: Dict[str, int] = {}
    pool_restarts = 0
    if jobs > 1 and len(plans) > 1:
        from repro.runtime.parallel import (
            ParallelUnavailable,
            run_parallel_campaign,
        )

        try:
            results, worker_trials, pool_restarts = run_parallel_campaign(
                module, plans, function=function, args=args,
                output_objects=output_objects, externals=externals,
                jobs=jobs, chunk_size=chunk_size, progress=progress,
                policy=policy, trial_timeout=trial_timeout,
                max_pool_retries=max_pool_retries, on_result=emit,
                total=len(plans), engine=engine, threads=threads,
                quantum=quantum,
            )
            jobs_used = jobs
        except ParallelUnavailable:
            results = []
    if not results and plans:
        memory_image = MachineMemory.pristine(module)
        done = 0
        for plan in plans:
            trial = run_planned_trial(
                module, profile.golden, plan, function=function, args=args,
                output_objects=output_objects, externals=externals,
                policy=policy, trial_timeout=trial_timeout, engine=engine,
                memory_image=memory_image, threads=threads, quantum=quantum,
            )
            emit(plan.trial_index, trial)
            results.append(trial)
            done += 1
            if progress is not None:
                progress(done, len(plans))
        worker_trials = {"worker-0": len(results)}
    for plan, trial in zip(plans, results):
        trial.section = section_of_index[plan.trial_index]

    # ---- fold executed trials into pruned records ------------------------
    live_tallies: Dict[str, Dict[str, int]] = {}
    for trial in results:
        tally = live_tallies.setdefault(trial.section, {})
        tally[trial.outcome] = tally.get(trial.outcome, 0) + 1
    for section, (sampler, budget, fingerprint) in samplers.items():
        if section not in live_tallies:
            continue  # fully-analytic sections were recorded above
        tally = live_tallies[section]
        live_n = sum(tally.values())
        live_share = 1.0 - sampler.pruned_fraction
        counts = {
            outcome: budget * live_share * count / live_n
            for outcome, count in sorted(tally.items())
        }
        for outcome, p in sampler.analytic.items():
            counts[outcome] = (
                counts.get(outcome, 0.0)
                + budget * sampler.pruned_fraction * p
            )
        records[section] = SectionRecord(
            fingerprint=fingerprint, weight=weights[section],
            n=float(budget), executed=live_n, counts=counts,
            estimator="pruned",
            pruned_fraction=sampler.pruned_fraction,
            live_counts={o: float(c) for o, c in sorted(tally.items())},
            live_n=live_n,
        )
        status[section] = "reinjected"

    if update_store:
        store.campaign = identity
        store.sections = dict(records)
        store.save()

    return ComposedCampaign(
        trials=results,
        elapsed=time.monotonic() - start,
        jobs=jobs_used,
        worker_trials=worker_trials,
        pool_restarts=pool_restarts,
        composed_fraction=composed_fraction,
        section_records=records,
        section_status=status,
        site_mass=weights,
        total_sites=total_sites,
        executed_trials=len(results),
    )


def _build_store(
    module: Module,
    store: SectionStore,
    profile: SectionProfile,
    identity: Dict[str, Any],
    module_fp: str,
    weights: Dict[str, int],
    total_sites: int,
    *,
    function: str,
    args: Sequence,
    output_objects: Sequence[str],
    detector: DetectionModel,
    trials: int,
    seed: int,
    externals,
    jobs: int,
    chunk_size: Optional[int],
    progress,
    policy: SupervisorPolicy,
    trial_timeout: Optional[float],
    max_pool_retries: int,
    on_result: Optional[Callable[[int, TrialResult], None]],
    on_start: Optional[Callable[[Dict[str, Any]], None]],
    engine: Optional[str],
    update_store: bool,
    threads: int,
    quantum: Optional[int],
    start: float,
) -> ComposedCampaign:
    """First run against an empty store: full campaign + attribution.

    The stored counts are the full campaign's integer tallies, so a
    later compose over an unchanged module pools them back into exactly
    the distribution this run reports.
    """
    plans = plan_campaign(seed, trials, profile.events, detector)
    section_of_index = {
        plan.trial_index: profile.section_of_site(plan.sites[0])
        for plan in plans
    }
    if on_start is not None:
        on_start({"mode": "build"})

    def emit(index: int, trial: TrialResult) -> None:
        trial.section = section_of_index[index]
        if on_result is not None:
            on_result(index, trial)

    result = run_campaign(
        module, function=function, args=args,
        output_objects=output_objects, detector=detector, trials=trials,
        seed=seed, externals=externals, jobs=jobs, chunk_size=chunk_size,
        progress=progress, policy=policy, trial_timeout=trial_timeout,
        max_pool_retries=max_pool_retries, on_result=emit, engine=engine,
        threads=threads, quantum=quantum,
    )
    records: Dict[str, SectionRecord] = {}
    status: Dict[str, str] = {}
    tallies: Dict[str, Dict[str, int]] = {}
    for index, trial in enumerate(result.trials):
        section = section_of_index[index]
        trial.section = section
        tally = tallies.setdefault(section, {})
        tally[trial.outcome] = tally.get(trial.outcome, 0) + 1
    for section, tally in tallies.items():
        n = sum(tally.values())
        records[section] = SectionRecord(
            fingerprint=_section_fingerprint(section, profile, module_fp),
            weight=weights.get(section, 0),
            n=float(n),
            executed=n,
            counts={o: float(c) for o, c in sorted(tally.items())},
            estimator="empirical",
        )
        status[section] = "built"
    for section, weight in weights.items():
        if section in records:
            continue
        # Persist every zero-hit section (tiny weight, no site draw
        # landed there).  The empty record is faithful — the full
        # campaign allocated it zero trials — so a no-change compose
        # need not re-budget it (which would perturb the pooled totals).
        records[section] = SectionRecord(
            fingerprint=_section_fingerprint(section, profile, module_fp),
            weight=weight, n=0.0, executed=0, counts={},
            estimator="empirical",
        )
        status[section] = "built"

    if update_store:
        store.campaign = identity
        store.basis_trials = trials
        store.sections = dict(records)
        store.save()

    return ComposedCampaign(
        trials=result.trials,
        elapsed=time.monotonic() - start,
        jobs=result.jobs,
        worker_trials=result.worker_trials,
        pool_restarts=result.pool_restarts,
        resumed_trials=result.resumed_trials,
        composed_fraction=0.0,
        section_records=records,
        section_status=status,
        site_mass=weights,
        total_sites=total_sites,
        executed_trials=len(result.trials),
    )
