"""Bit-level static pruning of fault sites (BEC-style, PAPERS.md).

A transient flip of bit *b* in the destination register of a dynamic
instruction is **provably masked** when a backward bit-liveness
dataflow shows no subsequent use can observe bit *b* of that value:
it is overwritten before any read, truncated away by a shift or an
``and`` with a constant, or simply never consumed.  Such (site, bit)
pairs need no trial — their outcome is a pure function of the detector
model and the golden run's recovery-pointer liveness, computed
analytically in :func:`analytic_outcomes`.

The analysis is deliberately conservative:

* comparisons, divisions, min/max, select conditions, branch
  conditions, call/spawn/join arguments, return values, addresses and
  allocation sizes demand **all 64 bits** of their register operands
  (any bit can steer control flow, trap behaviour, or escape the
  analysis boundary);
* ``add``/``sub``/``mul``/``neg`` demand every bit up to the highest
  demanded result bit (carries propagate strictly upward);
* stored values demand all bits unless the store's abstract address
  (via the module's alias analysis, ``static`` mode) provably cannot
  reach any load, any ``ckpt_mem``, or any observed output object;
* only ``i64`` destinations are prunable — float flips perturb the
  IEEE encoding and pointer flips the offset, neither of which
  bit-liveness over two's-complement values describes;
* register checkpoints (``ckpt_reg``) demand all bits: the checkpoint
  log is restorable state.

Recovery blocks need no special CFG edges: a rollback re-executes only
instructions that are statically reachable from the injection point,
except for the prefix between the region header and the faulting
instruction — and every register that prefix reads before writing is
in the region's live-in checkpoint set, restored to its pre-fault
value before re-execution (see ``docs/incremental.md`` for the full
argument).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.alias import AliasAnalysis
from repro.ir.module import Module
from repro.ir.types import Type
from repro.ir.values import Constant, VirtualRegister

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1
SIGN_BIT = 1 << 63

#: Campaigns flip bits 0..31 (``plan_trial`` draws ``randrange(0, 32)``),
#: so only the low 32 bits of a dead mask are ever exercised.
CAMPAIGN_BITS = 32


def _smear(mask: int) -> int:
    """All bits at or below the highest set bit (carry propagation)."""
    if mask == 0:
        return 0
    return (1 << mask.bit_length()) - 1


def _const(operand) -> Optional[int]:
    if isinstance(operand, Constant) and not isinstance(operand.value, float):
        return int(operand.value) & MASK64
    return None


def _demand_all(live: Dict[VirtualRegister, int], regs) -> None:
    for reg in regs:
        live[reg] = MASK64


def _demand(live: Dict[VirtualRegister, int], operand, mask: int) -> None:
    if isinstance(operand, VirtualRegister) and mask:
        live[operand] = live.get(operand, 0) | mask


def _binop_demands(inst, result: int, live: Dict[VirtualRegister, int]) -> None:
    op = inst.op
    lhs, rhs = inst.lhs, inst.rhs
    if op in ("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"):
        if result:
            _demand(live, lhs, MASK64)
            _demand(live, rhs, MASK64)
        return
    if result == 0:
        return
    if op == "and":
        lc, rc = _const(lhs), _const(rhs)
        _demand(live, lhs, result & rc if rc is not None else result)
        _demand(live, rhs, result & lc if lc is not None else result)
    elif op == "or":
        lc, rc = _const(lhs), _const(rhs)
        _demand(live, lhs, result & ~rc & MASK64 if rc is not None else result)
        _demand(live, rhs, result & ~lc & MASK64 if lc is not None else result)
    elif op == "xor":
        _demand(live, lhs, result)
        _demand(live, rhs, result)
    elif op in ("shl", "lshr", "ashr"):
        rc = _const(rhs)
        if rc is None:
            _demand(live, lhs, MASK64)
            _demand(live, rhs, MASK64)
            return
        k = rc & 63
        if op == "shl":
            # result bit i comes from lhs bit i-k (bits above 63 drop).
            _demand(live, lhs, result >> k)
        elif op == "lshr":
            _demand(live, lhs, (result << k) & MASK64)
        else:  # ashr: high k result bits replicate lhs bit 63
            mask = (result << k) & MASK64
            if k and result >> (64 - k):
                mask |= SIGN_BIT
            _demand(live, lhs, mask)
    elif op in ("add", "sub", "mul"):
        mask = _smear(result)
        _demand(live, lhs, mask)
        _demand(live, rhs, mask)
    else:  # sdiv, srem, min, max: every input bit can matter
        _demand(live, lhs, MASK64)
        _demand(live, rhs, MASK64)


def _transfer(inst, live: Dict[VirtualRegister, int],
              dead_store_values: Set[int], inst_id: int) -> int:
    """Apply one instruction backwards; return the dest's live-after mask.

    ``live`` maps registers to the bits demanded *after* this
    instruction; on return it holds the demand *before* it.
    ``dead_store_values`` identifies stores (by ``inst_id``) whose
    value operand is provably unobservable.
    """
    op = inst.opcode
    defs = inst.defs()
    result = 0
    if defs:
        result = live.pop(defs[0], 0)
    if op == "binop":
        _binop_demands(inst, result, live)
    elif op == "unop":
        if inst.op == "not":
            _demand(live, inst.src, result)
        elif inst.op == "neg":
            _demand(live, inst.src, _smear(result))
        else:  # fneg, sitofp, fptosi, fsqrt, fabs
            if result:
                _demand(live, inst.src, MASK64)
    elif op == "mov":
        _demand(live, inst.src, result)
    elif op == "select":
        if result:
            _demand(live, inst.cond, MASK64)
            _demand(live, inst.if_true, result)
            _demand(live, inst.if_false, result)
    elif op == "cmp":
        if result:
            _demand(live, inst.lhs, MASK64)
            _demand(live, inst.rhs, MASK64)
    elif op == "load":
        # Address registers steer which word is read (and whether the
        # access traps): fully live regardless of the dest's demand.
        from repro.ir.values import memref_registers

        _demand_all(live, memref_registers(inst.ref))
    elif op == "addrof":
        from repro.ir.values import memref_registers

        if result:
            _demand_all(live, memref_registers(inst.ref))
    elif op == "store":
        from repro.ir.values import memref_registers

        _demand_all(live, memref_registers(inst.ref))
        if inst_id not in dead_store_values:
            _demand(live, inst.value, MASK64)
    elif op == "alloc":
        _demand(live, inst.size, MASK64)
    elif op == "br":
        _demand(live, inst.cond, MASK64)
    elif op in ("call", "spawn"):
        _demand_all(live, inst.uses())
    elif op == "join":
        _demand(live, inst.thread, MASK64)
    elif op == "ret":
        if inst.value is not None:
            _demand(live, inst.value, MASK64)
    elif op == "ckpt_reg":
        # The checkpointed value is restorable state: all bits live.
        live[inst.reg] = MASK64
    elif op == "ckpt_mem":
        from repro.ir.values import memref_registers

        _demand_all(live, memref_registers(inst.ref))
    # set_recovery_ptr / clear_recovery_ptr / restore / jmp: no register
    # uses.  ``restore`` redefines checkpointed registers from the log,
    # but treating it as a no-def only *adds* liveness — conservative.
    return result


def _dead_store_values(
    module: Module,
    alias: AliasAnalysis,
    observed_objects: Optional[Set[str]],
) -> Set[int]:
    """Ids (``id(inst)``) of stores whose value can never be observed.

    A store value is unobservable when its abstract address provably
    cannot alias any load or ``ckpt_mem`` in the module and its object
    set is known and disjoint from every observed output object.  When
    the output set is unknown every store is observable.
    """
    if observed_objects is None:
        return set()
    read_keys = []
    for func in module:
        for block in func:
            for inst in block:
                for ref in inst.loads():
                    read_keys.append(alias.key(func.name, ref))
    dead: Set[int] = set()
    for func in module:
        for block in func:
            for inst in block:
                if inst.opcode != "store":
                    continue
                key = alias.key(func.name, inst.ref)
                if key.objs is None:
                    continue  # TOP: may touch anything
                if key.objs & observed_objects:
                    continue
                if any(alias.may_alias(key, read) for read in read_keys):
                    continue
                dead.add(id(inst))
    return dead


def function_dead_masks(
    func,
    dead_store_values: Set[int],
) -> Dict[Tuple[str, int], int]:
    """Per-instruction dead-bit masks for one function.

    Returns ``{(block label, instruction index): mask}`` where ``mask``
    has bit *b* set iff flipping bit *b* of the instruction's
    destination register immediately after it executes is provably
    unobservable.  Only ``i64`` destinations get non-zero masks; masks
    cover the campaign's bit range (0..31).
    """
    blocks = list(func)
    succ: Dict[str, Tuple[str, ...]] = {}
    for block in blocks:
        insts = list(block)
        succ[block.label] = insts[-1].successors() if insts else ()
    # live-in[label]: register -> demanded bits at block entry.
    live_in: Dict[str, Dict[VirtualRegister, int]] = {
        block.label: {} for block in blocks
    }
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            live: Dict[VirtualRegister, int] = {}
            for target in succ[block.label]:
                for reg, mask in live_in.get(target, {}).items():
                    live[reg] = live.get(reg, 0) | mask
            for inst in reversed(list(block)):
                _transfer(inst, live, dead_store_values, id(inst))
            old = live_in[block.label]
            if live != old:
                live_in[block.label] = live
                changed = True
    # Final forward pass per block: recompute live-after at each def.
    masks: Dict[Tuple[str, int], int] = {}
    for block in blocks:
        live = {}
        for target in succ[block.label]:
            for reg, mask in live_in.get(target, {}).items():
                live[reg] = live.get(reg, 0) | mask
        insts = list(block)
        # Walk backwards so ``live`` is the demand after each inst.
        after: List[Dict[VirtualRegister, int]] = [dict(live)]
        for inst in reversed(insts):
            _transfer(inst, live, dead_store_values, id(inst))
            after.append(dict(live))
        after.reverse()  # after[i+1] is demand after insts[i]... careful
        for index, inst in enumerate(insts):
            defs = inst.defs()
            if not defs:
                continue
            dest = defs[0]
            if dest.type is not Type.I64:
                masks[(block.label, index)] = 0
                continue
            live_after = after[index + 1].get(dest, 0)
            masks[(block.label, index)] = (~live_after) & MASK32
    return masks


def module_dead_masks(
    module: Module,
    output_objects: Optional[Sequence[str]] = None,
    alias_mode: str = "static",
) -> Dict[Tuple[str, str, int], int]:
    """Dead-bit masks for every instruction of every function, keyed by
    ``(function, block label, instruction index)`` coordinates (the
    portable, cache-safe keying)."""
    alias = AliasAnalysis(module, mode=alias_mode)
    observed = set(output_objects) if output_objects is not None else None
    dead_values = _dead_store_values(module, alias, observed)
    masks: Dict[Tuple[str, str, int], int] = {}
    for func in module:
        for (label, index), mask in function_dead_masks(
            func, dead_values
        ).items():
            masks[(func.name, label, index)] = mask
    return masks


def cached_dead_masks(
    module: Module,
    cache,
    output_objects: Optional[Sequence[str]] = None,
    alias_mode: str = "static",
) -> Dict[Tuple[str, str, int], int]:
    """Memoize :func:`module_dead_masks` in an ``AnalysisCache``.

    Keyed by the module's content hash plus the observation set — the
    same discipline every portable pipeline product uses, so repeated
    incremental runs in one process re-derive nothing.
    """
    from repro.pipeline import module_fingerprint

    key = (
        module_fingerprint(module),
        "bit-liveness",
        tuple(sorted(output_objects)) if output_objects is not None else None,
        alias_mode,
    )
    return cache.get_or_create(
        key, lambda: module_dead_masks(module, output_objects, alias_mode)
    )


# ---------------------------------------------------------------------------
# Analytic classification of pruned mass
# ---------------------------------------------------------------------------


def latency_distribution(detector) -> Tuple[float, List[Tuple[int, float]]]:
    """The detector's exact latency pmf: ``(miss probability,
    [(latency, probability), ...])`` with probabilities summing to 1."""
    miss = 1.0 - detector.coverage
    cov = detector.coverage
    dmax = detector.dmax
    if cov <= 0.0:
        return 1.0, []
    if dmax == 0:
        return miss, [(0, cov)]
    if detector.kind == "uniform":
        p = cov / (dmax + 1)
        return miss, [(lat, p) for lat in range(dmax + 1)]
    if detector.kind == "fixed":
        return miss, [(dmax, cov)]
    # Geometric with mean dmax/2, truncated at dmax (matches
    # DetectionModel.sample_latency's loop exactly).
    mean = max(dmax / 2.0, 1.0)
    p = min(1.0 / mean, 1.0)
    pmf = []
    survive = 1.0
    for lat in range(dmax):
        pmf.append((lat, cov * survive * p))
        survive *= (1.0 - p)
    pmf.append((dmax, cov * survive))
    return miss, pmf


def analytic_outcomes(event: int, profile, detector) -> Dict[str, float]:
    """Exact outcome distribution of a provably-dead bit flip at
    ``event``, integrated over the detector's latency distribution.

    A dead flip never alters data or control flow, so the trial
    replays the golden event stream; the only question is whether the
    detection deadline fires inside it and whether a recovery pointer
    is live at the firing post-step:

    * undetected, or deadline past the end of the run → ``masked``;
    * deadline fires with a live pointer → rollback re-executes from a
      clean checkpoint → ``recovered``;
    * deadline fires with no live pointer → ``escape_unrecoverable``.

    The deadline arms at ``event + latency`` but is evaluated starting
    with the *next* post-step (injection steps skip deadline checks),
    so the firing index is ``event + 1`` for latency 0.
    """
    miss, pmf = latency_distribution(detector)
    events = profile.events
    probs = {"masked": miss, "recovered": 0.0, "escape_unrecoverable": 0.0}
    for latency, p in pmf:
        fire = event + 1 if latency == 0 else event + latency
        if fire >= events:
            probs["masked"] += p
        elif profile.live[fire]:
            probs["recovered"] += p
        else:
            probs["escape_unrecoverable"] += p
    return {k: v for k, v in probs.items() if v > 0.0}


def classify_dead_site(site: int, latency: Optional[int], profile) -> str:
    """The outcome of one concrete dead-bit trial (ground-truth hook for
    tests and the fuzz oracle)."""
    event = profile.injection_event(site)
    if event is None or latency is None:
        return "masked"
    fire = event + 1 if latency == 0 else event + latency
    if fire >= profile.events:
        return "masked"
    return "recovered" if profile.live[fire] else "escape_unrecoverable"


# ---------------------------------------------------------------------------
# Per-section importance-sampling distribution
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SectionSampler:
    """The live (site, bit) mass of one section, for importance sampling.

    ``plan_trial(site_dist=...)`` draws uniformly from the *live* pairs
    only; the pruned mass (fraction ``pruned_fraction`` of the
    section's total (site, bit) mass) is folded in analytically via
    ``analytic_counts``.  ``total_mass``/``live_mass`` count (site,
    bit) pairs weighted by how many uniform sites roll forward to each
    register-writing event.
    """

    section: str
    events: List[int]
    weights: List[int]
    live_bits: List[Tuple[int, ...]]
    total_mass: int
    live_mass: int
    cumulative: List[int]
    analytic: Dict[str, float]

    @property
    def pruned_fraction(self) -> float:
        if self.total_mass <= 0:
            return 0.0
        return 1.0 - self.live_mass / self.total_mass

    def draw(self, rng) -> Tuple[int, int]:
        """One (site, bit) pair, uniform over the live mass."""
        import bisect

        if self.live_mass <= 0:
            raise IndexError(f"section {self.section} has no live mass")
        r = rng.randrange(self.live_mass)
        pos = bisect.bisect_right(self.cumulative, r)
        offset = r - (self.cumulative[pos - 1] if pos > 0 else 0)
        bits = self.live_bits[pos]
        return self.events[pos], bits[offset % len(bits)]


def build_sampler(
    section: str,
    events: Sequence[int],
    profile,
    masks: Dict[Tuple[str, str, int], int],
    detector,
) -> SectionSampler:
    """Assemble one section's sampler from the attribution profile and
    the static dead masks."""
    ev: List[int] = []
    weights: List[int] = []
    live_bits: List[Tuple[int, ...]] = []
    cumulative: List[int] = []
    total_mass = 0
    live_mass = 0
    analytic_weight: Dict[str, float] = {}
    pruned_total = 0
    for event in events:
        weight = profile.site_weight(event)
        if weight <= 0:
            continue
        mask = 0
        if profile.mask_valid[event]:
            mask = masks.get(profile.keys[profile.event_key[event]], 0)
        dead = [b for b in range(CAMPAIGN_BITS) if mask >> b & 1]
        alive = tuple(
            b for b in range(CAMPAIGN_BITS) if not (mask >> b & 1)
        )
        total_mass += weight * CAMPAIGN_BITS
        if dead:
            share = weight * len(dead)
            pruned_total += share
            for outcome, p in analytic_outcomes(event, profile, detector).items():
                analytic_weight[outcome] = (
                    analytic_weight.get(outcome, 0.0) + share * p
                )
        if alive:
            ev.append(event)
            weights.append(weight)
            live_bits.append(alive)
            live_mass += weight * len(alive)
            cumulative.append(live_mass)
    if pruned_total:
        analytic = {
            outcome: mass / pruned_total
            for outcome, mass in sorted(analytic_weight.items())
        }
    else:
        analytic = {}
    return SectionSampler(
        section=section,
        events=ev,
        weights=weights,
        live_bits=live_bits,
        total_mass=total_mass,
        live_mass=live_mass,
        cumulative=cumulative,
        analytic=analytic,
    )


def dead_sites(
    profile,
    masks: Dict[Tuple[str, str, int], int],
    limit: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Every provably-dead (event, bit) pair of a profile (optionally
    truncated), for oracle checks and ground-truth tests."""
    pairs: List[Tuple[int, int]] = []
    for event in profile.defs_events:
        if not profile.mask_valid[event]:
            continue
        mask = masks.get(profile.keys[profile.event_key[event]], 0)
        if not mask:
            continue
        for bit in range(CAMPAIGN_BITS):
            if mask >> bit & 1:
                pairs.append((event, bit))
                if limit is not None and len(pairs) >= limit:
                    return pairs
    return pairs
