"""Incremental SFI: sectioned attribution, bit-level pruning, composition.

See ``docs/incremental.md``.  :mod:`sections` partitions the fault-site
space into fingerprint-keyed (function, region) sections and persists
per-section outcome distributions; :mod:`bitmask` statically proves
(site, bit) pairs masked and importance-samples the rest;
:mod:`delta` diffs fingerprints, re-injects only changed sections, and
composes the remainder from the store.
"""

from repro.incremental.bitmask import (
    SectionSampler,
    analytic_outcomes,
    build_sampler,
    cached_dead_masks,
    classify_dead_site,
    dead_sites,
    function_dead_masks,
    latency_distribution,
    module_dead_masks,
)
from repro.incremental.delta import (
    ComposedCampaign,
    derive_section_trial_seed,
    run_incremental_campaign,
    validate_incremental_config,
)
from repro.incremental.sections import (
    DEAD_SECTION,
    IncrementalError,
    SectionProfile,
    SectionRecord,
    SectionStore,
    campaign_identity,
    capture_attribution,
    module_fingerprints,
    normalized_function_text,
    region_ordinals,
    section_fingerprint,
    section_function,
)

__all__ = [
    "DEAD_SECTION",
    "ComposedCampaign",
    "IncrementalError",
    "SectionProfile",
    "SectionRecord",
    "SectionSampler",
    "SectionStore",
    "analytic_outcomes",
    "build_sampler",
    "cached_dead_masks",
    "campaign_identity",
    "capture_attribution",
    "classify_dead_site",
    "dead_sites",
    "derive_section_trial_seed",
    "function_dead_masks",
    "latency_distribution",
    "module_dead_masks",
    "module_fingerprints",
    "normalized_function_text",
    "region_ordinals",
    "run_incremental_campaign",
    "section_fingerprint",
    "section_function",
    "validate_incremental_config",
]
