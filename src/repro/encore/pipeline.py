"""The end-to-end Encore compiler pipeline (paper Figure 3).

``EncoreCompiler`` strings together the passes exactly as the paper's
high-level vision describes: profile the application, partition each
function's CFG into SEME interval regions, analyze (and re-analyze
after merging) their idempotence under the configured ``Pmin``, select
regions under the gamma/eta/budget heuristics, and instrument the
module with checkpoints and recovery blocks.  The resulting
:class:`EncoreReport` carries everything the evaluation figures need.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.alias import AliasAnalysis
from repro.encore.coverage_model import (
    CoverageBreakdown,
    FullSystemCoverage,
    full_system_coverage,
    region_coverage,
)
from repro.encore.idempotence import IdempotenceAnalyzer, RegionStatus
from repro.encore.instrumentation import InstrumentationReport, instrument_module
from repro.encore.regions import Region, RegionBuilder
from repro.encore.selection import RegionSelector, SelectionConfig
from repro.ir.module import Module
from repro.profiling.profile_data import ProfileData
from repro.profiling.profiler import profile_module


@dataclasses.dataclass
class EncoreConfig:
    """Every knob of the pipeline in one place."""

    pmin: Optional[float] = 0.0
    gamma: float = 1.0
    eta: float = 0.25
    overhead_budget: float = 0.20
    auto_tune: bool = True
    alias_mode: str = "static"
    merge_regions: bool = True
    max_region_length: float = 2500.0
    #: "interval" is Encore's fine-grained partitioning; "function" is
    #: the whole-function granularity of prior work (Section 2.2's
    #: comparison with Relax), exposed for the baseline ablation.
    granularity: str = "interval"

    def selection(self) -> SelectionConfig:
        return SelectionConfig(
            gamma=self.gamma,
            eta=self.eta,
            overhead_budget=self.overhead_budget,
            auto_tune=self.auto_tune,
            max_region_length=self.max_region_length,
        )


@dataclasses.dataclass
class EncoreReport:
    """Everything the pipeline learned about one application."""

    module: Module
    config: EncoreConfig
    profile: ProfileData
    base_regions: List[Region]
    candidate_regions: List[Region]
    selected_regions: List[Region]
    instrumentation: InstrumentationReport
    total_app_instructions: int

    # -- region statistics (Figure 5) -----------------------------------

    def region_status_counts(self) -> Dict[RegionStatus, int]:
        counts = {status: 0 for status in RegionStatus}
        for region in self.base_regions:
            counts[region.status] += 1
        return counts

    def region_status_fractions(self) -> Dict[RegionStatus, float]:
        counts = self.region_status_counts()
        total = max(sum(counts.values()), 1)
        return {status: count / total for status, count in counts.items()}

    # -- dynamic execution breakdown (Figure 6) ------------------------------

    def dynamic_breakdown(self) -> Dict[str, float]:
        total = max(self.total_app_instructions, 1)
        idem = 0.0
        ckpt = 0.0
        for region in self.selected_regions:
            frac = region.dyn_instructions / total
            if region.status is RegionStatus.IDEMPOTENT:
                idem += frac
            else:
                ckpt += frac
        return {
            "idempotent": min(idem, 1.0),
            "checkpointed": min(ckpt, 1.0),
            "unprotected": max(0.0, 1.0 - idem - ckpt),
        }

    # -- overheads (Figure 7) ---------------------------------------------------

    def estimated_overhead(self) -> float:
        """Dynamic instrumentation instructions / application instructions."""
        total = max(self.total_app_instructions, 1)
        selector = self._selector
        return sum(
            selector.estimated_overhead(region, total)
            for region in self.selected_regions
        )

    # -- coverage (Figure 8) --------------------------------------------------------

    def coverage(self, dmax: float) -> CoverageBreakdown:
        return region_coverage(
            self.selected_regions, self.total_app_instructions, dmax
        )

    def full_system(self, dmax: float, masking_rate: float) -> FullSystemCoverage:
        return full_system_coverage(self.coverage(dmax), masking_rate)

    # Populated by the compiler; not part of the dataclass signature.
    _selector: RegionSelector = dataclasses.field(default=None, repr=False)


class EncoreCompiler:
    """Runs the full Encore pipeline over one module."""

    def __init__(self, module: Module, config: Optional[EncoreConfig] = None) -> None:
        self.module = module
        self.config = config or EncoreConfig()

    def compile(
        self,
        profile: Optional[ProfileData] = None,
        function: str = "main",
        args: Sequence = (),
        instrument: bool = True,
        externals=None,
    ) -> EncoreReport:
        """Profile (if needed), analyze, select, and instrument in place."""
        config = self.config
        if profile is None:
            profile = profile_module(
                self.module, function=function, args=args, externals=externals
            )
        memory_profile = None
        if config.alias_mode == "profiled":
            from repro.profiling.memprofile import collect_memory_profile

            memory_profile = collect_memory_profile(
                self.module, function=function, args=args, externals=externals
            )
        alias = AliasAnalysis(
            self.module, mode=config.alias_mode, memory_profile=memory_profile
        )
        analyzer = IdempotenceAnalyzer(
            self.module, alias=alias, profile=profile, pmin=config.pmin
        )
        builder = RegionBuilder(self.module, profile)
        selector = RegionSelector(
            self.module, analyzer, builder, profile, config.selection()
        )

        if config.granularity == "function":
            base_regions = builder.function_regions()
        else:
            base_regions = builder.base_regions()
        for region in base_regions:
            selector.analyze(region)

        total_app = self._total_app_instructions(profile)

        if config.granularity == "function":
            candidates = [
                builder.make_region(r.func, r.blocks, r.header, r.level)
                for r in base_regions
            ]
        elif config.merge_regions:
            candidates: List[Region] = []
            for func_name in self.module.functions:
                if not self.module.function(func_name).blocks:
                    continue
                candidates.extend(selector.merge_candidates(func_name))
        else:
            candidates = [
                builder.make_region(r.func, r.blocks, r.header, r.level)
                for r in base_regions
            ]
        for region in candidates:
            selector.analyze(region)

        selected = selector.select(candidates, total_app)

        if instrument:
            report_inst = instrument_module(self.module, selected)
        else:
            report_inst = InstrumentationReport()

        report = EncoreReport(
            module=self.module,
            config=config,
            profile=profile,
            base_regions=base_regions,
            candidate_regions=candidates,
            selected_regions=selected,
            instrumentation=report_inst,
            total_app_instructions=total_app,
        )
        report._selector = selector
        return report

    def _total_app_instructions(self, profile: ProfileData) -> int:
        total = 0
        for (func_name, label), count in profile.block_counts.items():
            func = self.module.get_function(func_name)
            if func is None or label not in func.blocks:
                continue
            length = sum(
                1 for inst in func.blocks[label] if not inst.is_instrumentation
            )
            total += count * length
        return total


def compile_for_encore(
    module: Module,
    config: Optional[EncoreConfig] = None,
    clone: bool = True,
    **kwargs,
) -> EncoreReport:
    """Convenience wrapper: optionally deep-copy, then run the pipeline.

    With ``clone=True`` (the default) the input module is left pristine
    and the instrumented copy is returned inside the report.
    """
    target = copy.deepcopy(module) if clone else module
    return EncoreCompiler(target, config).compile(**kwargs)
