"""The end-to-end Encore compiler pipeline (paper Figure 3).

``EncoreCompiler`` drives the staged pass pipeline of
:mod:`repro.pipeline.encore_passes` through a
:class:`repro.pipeline.PassManager`: profile the application, partition
each function's CFG into SEME interval regions, analyze (and re-analyze
after merging) their idempotence under the configured ``Pmin``, select
regions under the gamma/eta/budget heuristics, and instrument the
module with checkpoints and recovery blocks.  The resulting
:class:`EncoreReport` carries everything the evaluation figures need,
plus per-pass timing and counters (``report.stats``).

Passing an :class:`repro.pipeline.AnalysisCache` shares
config-independent products — the training profile, the memory-access
profile, per-region idempotence verdicts for a fixed
``(pmin, alias_mode)`` — across the per-configuration compilations of a
sweep (see :class:`repro.experiments.harness.PipelineCache`).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.encore.coverage_model import (
    CoverageBreakdown,
    FullSystemCoverage,
    full_system_coverage,
    region_coverage,
)
from repro.encore.idempotence import RegionStatus
from repro.encore.instrumentation import InstrumentationReport
from repro.encore.regions import Region
from repro.encore.selection import SelectionConfig
from repro.ir.module import Module
from repro.pipeline.manager import AnalysisCache, PassManager, PipelineStats
from repro.profiling.profile_data import ProfileData

#: Legal values for the string-typed configuration knobs.
GRANULARITIES = ("interval", "function")
ALIAS_MODES = ("static", "optimistic", "profiled")


@dataclasses.dataclass
class EncoreConfig:
    """Every knob of the pipeline in one place."""

    pmin: Optional[float] = 0.0
    gamma: float = 1.0
    eta: float = 0.25
    overhead_budget: float = 0.20
    auto_tune: bool = True
    alias_mode: str = "static"
    merge_regions: bool = True
    max_region_length: float = 2500.0
    #: "interval" is Encore's fine-grained partitioning; "function" is
    #: the whole-function granularity of prior work (Section 2.2's
    #: comparison with Relax), exposed for the baseline ablation.
    granularity: str = "interval"
    #: Self-protection level for the recovery metadata itself
    #: (checkpoint log + recovery pointer): "off" reproduces the paper's
    #: implicit fault-free-metadata assumption, "checksum" seals every
    #: record and verifies at rollback, "dup" additionally keeps a
    #: shadow copy for repair.  See :mod:`repro.runtime.guarded_state`.
    metadata_guard: str = "off"

    def __post_init__(self) -> None:
        from repro.runtime.guarded_state import GUARD_LEVELS

        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {self.granularity!r} "
                f"(expected one of {', '.join(GRANULARITIES)})"
            )
        if self.alias_mode not in ALIAS_MODES:
            raise ValueError(
                f"unknown alias_mode {self.alias_mode!r} "
                f"(expected one of {', '.join(ALIAS_MODES)})"
            )
        if self.metadata_guard not in GUARD_LEVELS:
            raise ValueError(
                f"unknown metadata_guard {self.metadata_guard!r} "
                f"(expected one of {', '.join(GUARD_LEVELS)})"
            )

    def selection(self) -> SelectionConfig:
        return SelectionConfig(
            gamma=self.gamma,
            eta=self.eta,
            overhead_budget=self.overhead_budget,
            auto_tune=self.auto_tune,
            max_region_length=self.max_region_length,
        )


@dataclasses.dataclass
class EncoreReport:
    """Everything the pipeline learned about one application."""

    module: Module
    config: EncoreConfig
    profile: ProfileData
    base_regions: List[Region]
    candidate_regions: List[Region]
    selected_regions: List[Region]
    instrumentation: InstrumentationReport
    total_app_instructions: int
    #: Per-pass wall time and counters for this compilation.
    stats: Optional[PipelineStats] = dataclasses.field(default=None, repr=False)

    # -- region statistics (Figure 5) -----------------------------------

    def region_status_counts(self) -> Dict[RegionStatus, int]:
        counts = {status: 0 for status in RegionStatus}
        for region in self.base_regions:
            counts[region.status] += 1
        return counts

    def region_status_fractions(self) -> Dict[RegionStatus, float]:
        counts = self.region_status_counts()
        total = max(sum(counts.values()), 1)
        return {status: count / total for status, count in counts.items()}

    # -- dynamic execution breakdown (Figure 6) ------------------------------

    def dynamic_breakdown(self) -> Dict[str, float]:
        total = max(self.total_app_instructions, 1)
        idem = 0.0
        ckpt = 0.0
        for region in self.selected_regions:
            frac = region.dyn_instructions / total
            if region.status is RegionStatus.IDEMPOTENT:
                idem += frac
            else:
                ckpt += frac
        return {
            "idempotent": min(idem, 1.0),
            "checkpointed": min(ckpt, 1.0),
            "unprotected": max(0.0, 1.0 - idem - ckpt),
        }

    # -- overheads (Figure 7) ---------------------------------------------------

    def estimated_overhead(self) -> float:
        """Dynamic instrumentation instructions / application instructions.

        Summed from the per-region estimates the selection pass froze
        onto each winner (``Region.est_overhead``) — the report needs no
        live selector — then scaled by the metadata-guard cost factor
        (sealing work rides on every checkpoint instruction).
        """
        from repro.encore.instrumentation import guard_overhead_factor

        base = sum(region.est_overhead for region in self.selected_regions)
        return base * guard_overhead_factor(self.config.metadata_guard)

    # -- coverage (Figure 8) --------------------------------------------------------

    def coverage(self, dmax: float) -> CoverageBreakdown:
        return region_coverage(
            self.selected_regions, self.total_app_instructions, dmax
        )

    def full_system(self, dmax: float, masking_rate: float) -> FullSystemCoverage:
        return full_system_coverage(self.coverage(dmax), masking_rate)


class EncoreCompiler:
    """Runs the full Encore pipeline over one module.

    ``cache`` (optional) is a shared :class:`AnalysisCache`; sweeps pass
    one cache across many compilations so portable products are
    computed once per workload rather than once per configuration.
    """

    def __init__(
        self,
        module: Module,
        config: Optional[EncoreConfig] = None,
        cache: Optional[AnalysisCache] = None,
    ) -> None:
        self.module = module
        self.config = config or EncoreConfig()
        self.cache = cache

    def compile(
        self,
        profile: Optional[ProfileData] = None,
        function: str = "main",
        args: Sequence = (),
        instrument: bool = True,
        externals=None,
        jobs: Optional[int] = None,
        stats: Optional[PipelineStats] = None,
    ) -> EncoreReport:
        """Profile (if needed), analyze, select, and instrument in place.

        ``jobs`` controls the per-function analysis fan-out (``None``
        resolves through ``ENCORE_ANALYSIS_JOBS``, defaulting to
        serial); results are identical for any value.
        """
        # Imported lazily: repro.pipeline.encore_passes imports the
        # sibling encore modules, which re-enter this package's
        # __init__ if resolved during its own import.
        from repro.pipeline.encore_passes import encore_passes
        from repro.pipeline.parallel import analysis_jobs

        manager = PassManager(
            self.module,
            config=self.config,
            passes=encore_passes(),
            cache=self.cache,
            stats=stats,
            function=function,
            args=args,
            externals=externals,
            jobs=analysis_jobs() if jobs is None else max(1, jobs),
        )
        if profile is not None:
            manager.seed("profile", profile)

        selection = manager.run("selection")
        # Snapshot analysis products before instrumentation invalidates
        # them (the transform dirties every non-preserved analysis).
        profile = manager.run("profile")
        base_regions = manager.run("regions")["base"]
        candidates = manager.run("merge")["candidates"]
        selected = selection["selected"]
        total_app = selection["total_app"]

        if instrument:
            report_inst = manager.run("instrument")
        else:
            report_inst = InstrumentationReport()

        return EncoreReport(
            module=self.module,
            config=self.config,
            profile=profile,
            base_regions=base_regions,
            candidate_regions=candidates,
            selected_regions=selected,
            instrumentation=report_inst,
            total_app_instructions=total_app,
            stats=manager.stats,
        )


def compile_for_encore(
    module: Module,
    config: Optional[EncoreConfig] = None,
    clone: bool = True,
    cache: Optional[AnalysisCache] = None,
    **kwargs,
) -> EncoreReport:
    """Convenience wrapper: optionally deep-copy, then run the pipeline.

    With ``clone=True`` (the default) the input module is left pristine
    and the instrumented copy is returned inside the report.
    """
    target = copy.deepcopy(module) if clone else module
    return EncoreCompiler(target, config, cache=cache).compile(**kwargs)
