"""Candidate recovery regions formed from the interval hierarchy.

Paper Section 3.3: candidate regions are intervals — SEME by
construction — and interval partitioning applies recursively, so coarser
candidates are available by walking up the hierarchy.  Each
:class:`Region` carries the profile-derived quantities the selection
heuristics consume: entry count, dynamic instruction mass, hot-path
length (the compile-time surrogate for coverage), and later its
idempotence verdict and checkpoint requirements.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import CFGView
from repro.analysis.dominators import DominatorTree
from repro.analysis.intervals import Interval, IntervalHierarchy
from repro.encore.idempotence import IdempotenceResult, RegionStatus
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import VirtualRegister
from repro.profiling.profile_data import ProfileData


@dataclasses.dataclass
class Region:
    """One candidate recovery region (a SEME subgraph of one function)."""

    id: int
    func: str
    header: str
    blocks: FrozenSet[str]
    level: int
    idem: Optional[IdempotenceResult] = None
    live_in_checkpoints: List[VirtualRegister] = dataclasses.field(default_factory=list)
    entries: int = 0
    dyn_instructions: int = 0
    hot_path: List[str] = dataclasses.field(default_factory=list)
    hot_path_length: int = 0
    selected: bool = False
    #: Frozen by the selection pass for winners: this region's share of
    #: the estimated dynamic instrumentation overhead.
    est_overhead: float = 0.0

    @property
    def status(self) -> RegionStatus:
        if self.idem is None:
            return RegionStatus.UNKNOWN
        return self.idem.status

    @property
    def checkpoint_stores(self):
        return self.idem.checkpoint_stores if self.idem is not None else []

    @property
    def checkpoint_sites(self):
        return self.idem.checkpoint_sites if self.idem is not None else []

    @property
    def activation_length(self) -> float:
        """Expected dynamic instructions per region activation (``n``)."""
        if self.entries <= 0:
            return float(self.hot_path_length)
        return self.dyn_instructions / self.entries

    def __repr__(self) -> str:
        return (
            f"<Region #{self.id} {self.func}/{self.header} L{self.level} "
            f"{len(self.blocks)} blocks {self.status.value}>"
        )


class RegionBuilder:
    """Builds candidate regions from interval hierarchies plus a profile."""

    def __init__(self, module: Module, profile: Optional[ProfileData] = None) -> None:
        self.module = module
        self.profile = profile
        self._ids = itertools.count()
        self._hierarchies: Dict[str, IntervalHierarchy] = {}
        self._cfgs: Dict[str, CFGView] = {}
        self._block_lengths: Dict[Tuple[str, str], int] = {}

    def cfg(self, func_name: str) -> CFGView:
        if func_name not in self._cfgs:
            self._cfgs[func_name] = CFGView(self.module.function(func_name))
        return self._cfgs[func_name]

    def hierarchy(self, func_name: str) -> IntervalHierarchy:
        if func_name not in self._hierarchies:
            self._hierarchies[func_name] = IntervalHierarchy(self.cfg(func_name))
        return self._hierarchies[func_name]

    def block_length(self, func_name: str, label: str) -> int:
        key = (func_name, label)
        if key not in self._block_lengths:
            func = self.module.function(func_name)
            count = sum(
                1 for inst in func.blocks[label] if not inst.is_instrumentation
            )
            self._block_lengths[key] = count
        return self._block_lengths[key]

    # -- construction ----------------------------------------------------

    def base_regions(self, func_name: Optional[str] = None) -> List[Region]:
        """Level-1 interval regions (the finest candidates)."""
        names = [func_name] if func_name else list(self.module.functions)
        regions: List[Region] = []
        for name in names:
            if not self.module.function(name).blocks:
                continue
            for interval in self.hierarchy(name).levels[0]:
                regions.append(self.region_from_interval(name, interval))
        return regions

    def function_regions(self, func_name: Optional[str] = None) -> List[Region]:
        """One region per function: the whole-function granularity of
        earlier work (Relax / de Kruijf et al.), which the paper argues
        leaves most idempotence unexploited ("only a few of these
        regions actually span an entire function", Section 1)."""
        names = [func_name] if func_name else list(self.module.functions)
        regions: List[Region] = []
        for name in names:
            func = self.module.function(name)
            if not func.blocks:
                continue
            regions.append(
                self.make_region(
                    name,
                    frozenset(func.reachable_labels()),
                    func.entry_label,
                    level=99,
                )
            )
        return regions

    def region_from_interval(self, func_name: str, interval: Interval) -> Region:
        return self.make_region(
            func_name,
            frozenset(interval.block_set),
            interval.header_block,
            level=interval.level,
        )

    def make_region(
        self, func_name: str, blocks: FrozenSet[str], header: str, level: int = 1
    ) -> Region:
        region = Region(
            id=next(self._ids),
            func=func_name,
            header=header,
            blocks=blocks,
            level=level,
        )
        self._attach_profile(region)
        return region

    def is_seme(self, region: Region) -> bool:
        """Verify the SEME property: all outside edges target the header."""
        cfg = self.cfg(region.func)
        for label in region.blocks:
            if label == region.header:
                continue
            if label not in cfg:
                continue
            for pred in cfg.preds[label]:
                if pred not in region.blocks:
                    return False
        return True

    # -- profile attachment ----------------------------------------------------

    def _attach_profile(self, region: Region) -> None:
        func = region.func
        if self.profile is not None:
            region.entries = self._external_entries(region)
            region.dyn_instructions = sum(
                self.profile.block_count(func, label)
                * self.block_length(func, label)
                for label in region.blocks
            )
        region.hot_path = self._hot_path(region)
        region.hot_path_length = sum(
            self.block_length(func, label) for label in region.hot_path
        )

    def _external_entries(self, region: Region) -> int:
        """How often control entered the region from outside it.

        Encore's entry instrumentation (recovery-pointer update plus
        register checkpoints) sits on the entry edges, so loop back
        edges inside the region do not re-pay it.  Function entry counts
        as an external entry when the region header is the entry block.
        """
        func = region.func
        cfg = self.cfg(func)
        if region.header not in cfg:
            return 0
        entries = 0
        if region.header == cfg.entry:
            entries += self.profile.function_entries(func)
        for pred in cfg.preds[region.header]:
            if pred not in region.blocks:
                entries += self.profile.edge_count(func, pred, region.header)
        header_count = self.profile.block_count(func, region.header)
        if entries == 0 and header_count > 0:
            entries = 1  # executed, but entry edges untracked: one entry
        return min(entries, header_count) if header_count else entries

    def _hot_path(self, region: Region) -> List[str]:
        """Follow the most-probable successors from the header.

        Stops when execution leaves the region or would revisit a block
        (one trip through any loop).  Without a profile the first
        successor is taken — a deterministic static stand-in.
        """
        cfg = self.cfg(region.func)
        if region.header not in cfg:
            return []
        path = [region.header]
        visited = {region.header}
        current = region.header
        while True:
            candidates = [s for s in cfg.succs[current] if s in region.blocks]
            if not candidates:
                break
            if self.profile is not None:
                nxt = self.profile.hottest_successor(region.func, current, candidates)
            else:
                nxt = candidates[0]
            if nxt is None or nxt in visited:
                break
            path.append(nxt)
            visited.add(nxt)
            current = nxt
        return path
