"""Encore: the paper's primary contribution.

Partition a program into SEME regions, analyze their (statistical)
idempotence, and instrument the cheap-to-recover ones with lightweight
checkpoints and recovery blocks so a low-cost fault detector can roll
execution back without hardware support.
"""

from repro.encore.address_sets import (
    AccessInfo,
    AccessSummaryBuilder,
    FunctionSummary,
)
from repro.encore.coverage_model import (
    CoverageBreakdown,
    FullSystemCoverage,
    GuardedCoverage,
    alpha,
    alpha_geometric,
    alpha_numeric,
    apply_guard,
    full_system_coverage,
    region_coverage,
)
from repro.encore.idempotence import (
    IdempotenceAnalyzer,
    IdempotenceResult,
    LoopSummary,
    RegionStatus,
)
from repro.encore.instrumentation import (
    InstrumentationReport,
    RegionStorage,
    entry_label,
    guard_overhead_factor,
    instrument_module,
    recovery_label,
)
from repro.encore.pipeline import (
    EncoreCompiler,
    EncoreConfig,
    EncoreReport,
    compile_for_encore,
)
from repro.encore.regions import Region, RegionBuilder
from repro.encore.selection import RegionSelector, SelectionConfig

__all__ = [
    "AccessInfo",
    "AccessSummaryBuilder",
    "CoverageBreakdown",
    "EncoreCompiler",
    "EncoreConfig",
    "EncoreReport",
    "FullSystemCoverage",
    "FunctionSummary",
    "GuardedCoverage",
    "IdempotenceAnalyzer",
    "IdempotenceResult",
    "InstrumentationReport",
    "LoopSummary",
    "Region",
    "RegionBuilder",
    "RegionSelector",
    "RegionStatus",
    "RegionStorage",
    "SelectionConfig",
    "alpha",
    "alpha_geometric",
    "alpha_numeric",
    "apply_guard",
    "compile_for_encore",
    "entry_label",
    "full_system_coverage",
    "guard_overhead_factor",
    "instrument_module",
    "recovery_label",
    "region_coverage",
]
