"""The analytical recoverability-coverage model (paper Section 4.2).

A fault at hot-path instruction ``s`` of a region of dynamic length
``n`` is recoverable iff it is detected before control leaves the
region: ``s + l < n`` for detection latency ``l``.  With uniform fault
sites over ``[0, n]`` and uniform detection latencies over
``[0, Dmax]``, the latency scaling factor integrates to Equation 7:

    alpha = 1 - Dmax / (2 n)    when n >= Dmax
    alpha = n / (2 Dmax)        when n <  Dmax

``alpha_numeric`` evaluates Equation 6 by quadrature for arbitrary
latency/site densities, used to validate the closed form and for the
detection-distribution ablation.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.encore.idempotence import RegionStatus
from repro.encore.regions import Region


def alpha(n: float, dmax: float) -> float:
    """Closed-form latency scaling factor (Equation 7)."""
    if n <= 0:
        return 0.0
    if dmax <= 0:
        return 1.0
    if n >= dmax:
        return 1.0 - dmax / (2.0 * n)
    return n / (2.0 * dmax)


def alpha_geometric(n: float, dmax: float) -> float:
    """Closed-form alpha for the *geometric* detector kind.

    ``DetectionModel(kind="geometric")`` draws latencies from a
    truncated exponential with rate ``lam = 1 / max(dmax/2, 1)`` on
    ``[0, dmax]`` (normalisation ``Z = 1 - exp(-lam*dmax)``); with
    uniform fault sites on ``[0, n]``, Equation 6 integrates to

        alpha = (n - (1 - e^{-lam n}) / lam) / (Z n)        n <= Dmax
        alpha = (Dmax/Z - 1/lam + n - Dmax) / n             n >  Dmax

    which :func:`alpha_numeric` with the model's pdf must reproduce —
    the geometric analogue of pinning Equation 7 for the uniform kind.
    """
    if n <= 0:
        return 0.0
    if dmax <= 0:
        return 1.0
    lam = 1.0 / max(dmax / 2.0, 1.0)
    norm = 1.0 - math.exp(-lam * dmax)
    if n <= dmax:
        return (n - (1.0 - math.exp(-lam * n)) / lam) / (norm * n)
    return (dmax / norm - 1.0 / lam + n - dmax) / n


def alpha_numeric(
    n: float,
    dmax: float,
    latency_pdf: Optional[Callable[[float], float]] = None,
    site_pdf: Optional[Callable[[float], float]] = None,
    steps: int = 400,
) -> float:
    """Equation 6 by midpoint quadrature.

    ``latency_pdf`` defaults to uniform on [0, Dmax]; ``site_pdf`` to
    uniform on [0, n].  Computes P(s + l < n).
    """
    if n <= 0:
        return 0.0
    if dmax <= 0:
        return 1.0
    if latency_pdf is None:
        latency_pdf = lambda l: 1.0 / dmax if 0 <= l <= dmax else 0.0
    if site_pdf is None:
        site_pdf = lambda s: 1.0 / n if 0 <= s <= n else 0.0
    ds = n / steps
    total = 0.0
    for i in range(steps):
        s = (i + 0.5) * ds
        upper = min(n - s, dmax)
        if upper <= 0:
            continue
        dl = upper / steps
        inner = 0.0
        for j in range(steps):
            l = (j + 0.5) * dl
            inner += latency_pdf(l) * dl
        total += site_pdf(s) * inner * ds
    return total


@dataclasses.dataclass
class CoverageBreakdown:
    """Fractions of application execution, for one detection latency.

    All fields are fractions of total *unmasked-fault-relevant* dynamic
    instructions (i.e., of application execution time); the full-system
    view of Figure 8 composes these with the hardware masking rate.
    """

    dmax: float
    recoverable_idempotent: float
    recoverable_checkpointed: float
    not_recoverable: float

    @property
    def recoverable(self) -> float:
        return self.recoverable_idempotent + self.recoverable_checkpointed


def region_coverage(
    regions: Iterable[Region],
    total_app_instructions: int,
    dmax: float,
) -> CoverageBreakdown:
    """Aggregate per-region alpha-weighted coverage (paper Section 4.2.1).

    Each *selected* region contributes its share of dynamic execution,
    scaled by alpha for its activation length; unselected execution and
    the alpha-complement are unrecoverable.
    """
    idem = 0.0
    ckpt = 0.0
    covered = 0.0
    for region in regions:
        if not region.selected or total_app_instructions <= 0:
            continue
        frac = region.dyn_instructions / total_app_instructions
        scale = alpha(region.activation_length, dmax)
        covered += frac
        if region.status is RegionStatus.IDEMPOTENT:
            idem += frac * scale
        else:
            ckpt += frac * scale
    not_recoverable = max(0.0, 1.0 - idem - ckpt)
    return CoverageBreakdown(
        dmax=dmax,
        recoverable_idempotent=idem,
        recoverable_checkpointed=ckpt,
        not_recoverable=not_recoverable,
    )


@dataclasses.dataclass
class GuardedCoverage:
    """Coverage after accounting for faults in the recovery metadata.

    The paper's model (Eq. 6/7) assumes the checkpoint log and recovery
    pointer are fault-free.  ``metadata_exposure`` is the probability
    that a would-be-recovered checkpointed fault *also* finds its
    region's recovery metadata corrupted; what happens to that slice
    depends on the guard level (:func:`apply_guard`).
    """

    dmax: float
    guard_level: str
    metadata_exposure: float
    recoverable_idempotent: float
    recoverable_checkpointed: float
    not_recoverable: float
    #: Corrupted-metadata rollbacks the guard detected: graceful
    #: restart-required degradation, no longer silently wrong.
    metadata_detected: float
    #: Corrupted-metadata rollbacks that restored garbage undetected.
    metadata_silent: float
    #: Corrupted-metadata rollbacks repaired from a shadow copy
    #: (recovery still succeeds; counted inside recoverable_checkpointed).
    metadata_repaired: float

    @property
    def recoverable(self) -> float:
        return self.recoverable_idempotent + self.recoverable_checkpointed


def apply_guard(
    breakdown: CoverageBreakdown,
    metadata_exposure: float,
    guard_level: str = "off",
) -> GuardedCoverage:
    """Degrade (or defend) a :class:`CoverageBreakdown` under metadata
    faults.

    Idempotent regions carry no checkpoint log — re-execution needs no
    restore — so only the *checkpointed* recoverable fraction is at
    risk.  With the guard ``off`` the exposed slice silently corrupts;
    with ``checksum`` it is detected and escalates (no longer counted
    recoverable, but never silent); with ``dup`` the shadow copy
    repairs it and recovery proceeds.
    """
    from repro.runtime.guarded_state import GUARD_LEVELS

    if guard_level not in GUARD_LEVELS:
        raise ValueError(f"unknown guard level {guard_level!r}")
    exposure = min(max(metadata_exposure, 0.0), 1.0)
    exposed = breakdown.recoverable_checkpointed * exposure
    ckpt = breakdown.recoverable_checkpointed
    detected = silent = repaired = 0.0
    if guard_level == "off":
        silent = exposed
        ckpt -= exposed
    elif guard_level == "checksum":
        detected = exposed
        ckpt -= exposed
    else:  # dup: repaired in place, still recoverable
        repaired = exposed
    return GuardedCoverage(
        dmax=breakdown.dmax,
        guard_level=guard_level,
        metadata_exposure=exposure,
        recoverable_idempotent=breakdown.recoverable_idempotent,
        recoverable_checkpointed=ckpt,
        not_recoverable=breakdown.not_recoverable + detected,
        metadata_detected=detected,
        metadata_silent=silent,
        metadata_repaired=repaired,
    )


@dataclasses.dataclass
class FullSystemCoverage:
    """Figure 8 stack for one benchmark and one detection latency."""

    dmax: float
    masked: float
    recoverable_idempotent: float
    recoverable_checkpointed: float
    not_recoverable: float

    @property
    def total_covered(self) -> float:
        return self.masked + self.recoverable_idempotent + self.recoverable_checkpointed


def full_system_coverage(
    breakdown: CoverageBreakdown, masking_rate: float
) -> FullSystemCoverage:
    """Compose software recoverability with the hardware masking rate.

    Of all injected faults, ``masking_rate`` are architecturally masked;
    the remainder land in live state and are recovered in proportion to
    the software coverage breakdown.
    """
    live = 1.0 - masking_rate
    return FullSystemCoverage(
        dmax=breakdown.dmax,
        masked=masking_rate,
        recoverable_idempotent=live * breakdown.recoverable_idempotent,
        recoverable_checkpointed=live * breakdown.recoverable_checkpointed,
        not_recoverable=live * breakdown.not_recoverable,
    )
