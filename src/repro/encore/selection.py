"""Region selection and merging heuristics (paper Section 3.4.2).

Two knobs trade reliability for performance:

* ``gamma`` — a region is a candidate for instrumentation only when
  ``Coverage/Cost > gamma``.  Coverage is the hot-path length through
  the region; cost is the ratio of checkpointing instructions to
  hot-path instructions.
* ``eta`` — two adjacent regions are merged only when
  ``dCoverage/dCost > eta`` with ``dCoverage`` defined by Equation 5
  (preferring merges of similarly-sized regions).

On top of the raw thresholds the selector supports the paper's
budget-driven tuning ("values for gamma and eta were empirically
derived for each application to target ... ~20%"): candidate regions
are ranked by recoverable-work-per-overhead and greedily accepted while
the estimated dynamic-instruction overhead stays within the budget.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.cfg import CFGView
from repro.analysis.liveness import LivenessAnalysis
from repro.encore.idempotence import IdempotenceAnalyzer, RegionStatus
from repro.encore.regions import Region, RegionBuilder
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.profiling.profile_data import ProfileData

_EPSILON = 1e-9


@dataclasses.dataclass
class SelectionConfig:
    """Heuristic knobs (paper Section 3.4)."""

    gamma: float = 1.0
    eta: float = 0.25
    overhead_budget: float = 0.20
    auto_tune: bool = True
    max_merge_levels: int = 8
    #: Cap on a merged region's expected dynamic length per activation.
    #: Table 1 gives Encore's typical interval length as 100-1000
    #: instructions; the cap sits somewhat above that band (it bounds
    #: wasted re-execution work and checkpoint-buffer growth, both of
    #: which grow with region size) while letting hot loops whose bodies
    #: slightly exceed it merge to amortize detection latency.
    max_region_length: float = 2500.0


class RegionSelector:
    """Forms, merges, analyzes, and selects recovery regions."""

    def __init__(
        self,
        module: Module,
        analyzer: IdempotenceAnalyzer,
        builder: RegionBuilder,
        profile: Optional[ProfileData] = None,
        config: Optional[SelectionConfig] = None,
    ) -> None:
        self.module = module
        self.analyzer = analyzer
        self.builder = builder
        self.profile = profile
        self.config = config or SelectionConfig()
        self._liveness: Dict[str, LivenessAnalysis] = {}
        self._inst_block: Dict[int, Tuple[str, str]] = {}
        for func in module:
            for block in func:
                for inst in block:
                    self._inst_block[id(inst)] = (func.name, block.label)

    # -- shared analyses -------------------------------------------------

    def liveness(self, func_name: str) -> LivenessAnalysis:
        if func_name not in self._liveness:
            func = self.module.function(func_name)
            self._liveness[func_name] = LivenessAnalysis(
                func, self.analyzer.cfg(func_name)
            )
        return self._liveness[func_name]

    def analyze(self, region: Region) -> Region:
        """Fill in the idempotence verdict and register checkpoints."""
        if region.idem is None:
            region.idem = self.analyzer.analyze_region(
                region.func, region.blocks, region.header
            )
            region.live_in_checkpoints = self.liveness(
                region.func
            ).region_live_in_overwritten(region.blocks, region.header)
        return region

    # -- cost / coverage -----------------------------------------------------

    def coverage(self, region: Region) -> float:
        """Expected dynamic instructions protected per region activation.

        The paper uses the hot-path length as its compile-time coverage
        surrogate; with a profile available the expected per-activation
        length is the dynamic refinement of the same quantity, and the
        static hot-path length is the fallback.
        """
        return float(max(region.activation_length, 1.0))

    def cost(self, region: Region) -> float:
        """Checkpoint instructions per protected instruction.

        Counts the recovery-pointer update, one store per live-in
        register checkpoint, and two stores (data + address) per
        expected execution of each offending store within one region
        activation.
        """
        self.analyze(region)
        per_entry = 1.0 + len(region.live_in_checkpoints)
        if self.profile is not None and region.entries > 0:
            for site in region.idem.checkpoint_sites:
                loc = self._inst_block.get(id(site.inst))
                if loc is None:
                    continue
                count = self.profile.block_count(loc[0], loc[1])
                per_entry += 2.0 * len(site.refs) * count / region.entries
        else:
            hot = set(region.hot_path)
            for site in region.idem.checkpoint_sites:
                loc = self._inst_block.get(id(site.inst))
                if loc is not None and (not hot or loc[1] in hot):
                    per_entry += 2.0 * len(site.refs)
        return per_entry / self.coverage(region)

    def estimated_overhead(self, region: Region, total_app: int) -> float:
        """Expected dynamic instrumentation instructions / app instructions."""
        if total_app <= 0:
            return 0.0
        self.analyze(region)
        entries = region.entries
        dyn = entries * (1.0 + len(region.live_in_checkpoints))
        for site in region.idem.checkpoint_sites:
            loc = self._inst_block.get(id(site.inst))
            if loc is None:
                continue
            count = (
                self.profile.block_count(loc[0], loc[1])
                if self.profile is not None
                else entries
            )
            dyn += 2.0 * len(site.refs) * count
        return dyn / total_app

    # -- merging (Equation 5) -------------------------------------------------

    def merge_candidates(self, func_name: str) -> List[Region]:
        """Walk the interval hierarchy upward, fusing regions when
        ``dCoverage/dCost > eta``."""
        hierarchy = self.builder.hierarchy(func_name)
        current: Dict[str, Region] = {}
        for interval in hierarchy.levels[0]:
            region = self.builder.region_from_interval(func_name, interval)
            current[min(interval.block_set)] = region
        max_level = min(hierarchy.depth, self.config.max_merge_levels)
        for level_index in range(1, max_level):
            for interval in hierarchy.levels[level_index]:
                inside = [
                    key
                    for key, region in current.items()
                    if region.blocks <= interval.block_set
                ]
                if len(inside) < 2:
                    continue
                children = [current[k] for k in inside]
                if any(not c.blocks for c in children):
                    continue
                merged = self.builder.make_region(
                    func_name,
                    frozenset(interval.block_set),
                    interval.header_block,
                    level=interval.level,
                )
                if not self.builder.is_seme(merged):
                    continue
                if self._should_merge(merged, children):
                    for key in inside:
                        del current[key]
                    current[min(merged.blocks)] = merged
        return list(current.values())

    def _should_merge(self, merged: Region, children: List[Region]) -> bool:
        self.analyze(merged)
        if merged.status is RegionStatus.UNKNOWN or not merged.idem.checkpointable:
            return False
        if (
            merged.entries > 0
            and merged.activation_length > self.config.max_region_length
        ):
            return False
        for child in children:
            self.analyze(child)
        d_coverage = self.coverage(merged) / max(
            max(self.coverage(c) for c in children), _EPSILON
        )
        child_cost = sum(
            self.cost(c) * self.coverage(c) for c in children
        ) / max(sum(self.coverage(c) for c in children), _EPSILON)
        d_cost = max(self.cost(merged) - child_cost, _EPSILON)
        return d_coverage / d_cost > self.config.eta

    # -- selection -----------------------------------------------------------

    def select(
        self, regions: Iterable[Region], total_app_instructions: int
    ) -> List[Region]:
        """Apply gamma and (optionally) the overhead budget; mark winners."""
        candidates: List[Region] = []
        for region in regions:
            self.analyze(region)
            region.selected = False
            if region.status is RegionStatus.UNKNOWN:
                continue
            if not region.idem.checkpointable:
                continue
            ratio = self.coverage(region) / max(self.cost(region), _EPSILON)
            if ratio <= self.config.gamma:
                continue
            candidates.append(region)

        if not self.config.auto_tune:
            for region in candidates:
                region.selected = True
            return candidates

        def rank(region: Region) -> float:
            overhead = self.estimated_overhead(region, total_app_instructions)
            work = region.dyn_instructions / max(total_app_instructions, 1)
            return work / max(overhead, _EPSILON)

        chosen: List[Region] = []
        budget = self.config.overhead_budget
        spent = 0.0
        for region in sorted(candidates, key=rank, reverse=True):
            overhead = self.estimated_overhead(region, total_app_instructions)
            if region.dyn_instructions == 0:
                # Free to protect (never executed in the profile run).
                region.selected = True
                chosen.append(region)
                continue
            if spent + overhead <= budget:
                region.selected = True
                chosen.append(region)
                spent += overhead
        return chosen
