"""Rollback-recovery instrumentation (paper Section 3.2).

For every selected region this pass:

1. creates a *recovery block* that restores all state checkpointed since
   region entry and jumps back to the region header;
2. prepends to the header a ``SetRecoveryPtr`` (the paper's "simple
   store that updates a dedicated memory location with the address of
   the corresponding recovery block") followed by one ``CheckpointReg``
   per overwritten live-in register;
3. inserts a ``CheckpointMem`` (data + address, two stores' worth of
   dynamic cost) immediately before every offending store in the
   region's checkpoint set CP; and
4. invalidates the recovery pointer on every edge *leaving* the region
   (``ClearRecoveryPtr``), so a detection that fires after control has
   left the region classifies as an escape instead of rolling back
   into stale recovery state.  Exit clears are inserted in a second
   pass, after every region's entry edges have been retargeted, so the
   final CFG decides what counts as an exit edge.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Tuple

from repro.encore.idempotence import RegionStatus
from repro.encore.regions import Region
from repro.ir.instructions import (
    CheckpointMem,
    CheckpointReg,
    ClearRecoveryPtr,
    Jump,
    RestoreCheckpoints,
    SetRecoveryPtr,
)
from repro.ir.module import Module
from repro.ir.types import WORD_BYTES
from repro.runtime.guarded_state import GUARD_LEVELS, SEAL_COST


def guard_overhead_factor(level: str) -> float:
    """Dynamic-cost multiplier of a metadata-guard level.

    Sealing work rides on every checkpoint instruction (average dynamic
    cost ~2: ``ckpt_mem`` charges 2, ``ckpt_reg``/``set_recovery_ptr``
    1), so a level adding :data:`SEAL_COST` extra instructions per
    record inflates instrumentation overhead by ``1 + SEAL_COST / 2``.
    """
    if level not in GUARD_LEVELS:
        raise ValueError(f"unknown guard level {level!r}")
    return 1.0 + SEAL_COST[level] / 2.0


@dataclasses.dataclass
class RegionStorage:
    """Static checkpoint-buffer footprint of one region (Figure 7b)."""

    region_id: int
    memory_bytes: int
    register_bytes: int
    #: Seal/shadow storage added by the metadata guard (checksum words,
    #: plus full duplicates at level "dup").
    guard_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.memory_bytes + self.register_bytes + self.guard_bytes


@dataclasses.dataclass
class InstrumentationReport:
    """What the instrumentation pass did."""

    instrumented_regions: int = 0
    recovery_blocks: List[str] = dataclasses.field(default_factory=list)
    checkpoint_mem_sites: int = 0
    checkpoint_reg_sites: int = 0
    #: Region-exit ``ClearRecoveryPtr`` insertion points.
    clear_sites: int = 0
    #: Metadata self-protection level the storage was sized for.
    guard_level: str = "off"
    storage: List[RegionStorage] = dataclasses.field(default_factory=list)

    @property
    def mean_region_bytes(self) -> float:
        if not self.storage:
            return 0.0
        return sum(s.total_bytes for s in self.storage) / len(self.storage)

    @property
    def mean_guard_bytes(self) -> float:
        if not self.storage:
            return 0.0
        return sum(s.guard_bytes for s in self.storage) / len(self.storage)

    @property
    def mean_memory_bytes(self) -> float:
        if not self.storage:
            return 0.0
        return sum(s.memory_bytes for s in self.storage) / len(self.storage)

    @property
    def mean_register_bytes(self) -> float:
        if not self.storage:
            return 0.0
        return sum(s.register_bytes for s in self.storage) / len(self.storage)


def recovery_label(region: Region) -> str:
    return f"__encore_rec_{region.id}"


def entry_label(region: Region) -> str:
    return f"__encore_entry_{region.id}"


def _retarget(term, old: str, new: str) -> None:
    """Rewrite a terminator's successor labels from ``old`` to ``new``."""
    if term.opcode == "jmp" and term.target == old:
        term.target = new
    elif term.opcode == "br":
        if term.if_true == old:
            term.if_true = new
        if term.if_false == old:
            term.if_false = new


def instrument_module(
    module: Module, regions: Iterable[Region], guard_level: str = "off"
) -> InstrumentationReport:
    """Instrument ``module`` in place for the selected ``regions``.

    Regions must be disjoint per function (guaranteed by the selector,
    which partitions each function's CFG).  Returns a report with static
    storage accounting.  ``guard_level`` sizes the metadata guard's
    seal/shadow storage into each region's footprint; the run-time
    protection itself is armed on the interpreter (``metadata_guard``).
    """
    if guard_level not in GUARD_LEVELS:
        raise ValueError(f"unknown guard level {guard_level!r}")
    report = InstrumentationReport(guard_level=guard_level)
    instrumented: List[Region] = []
    for region in regions:
        if not region.selected:
            continue
        func = module.function(region.func)
        if region.header not in func.blocks:
            continue
        label = recovery_label(region)
        tramp_label = entry_label(region)
        if label in func.blocks or tramp_label in func.blocks:
            raise ValueError(f"region {region.id} already instrumented")

        # 1. Recovery block: restore checkpoints, then re-enter through the
        # trampoline (which resets the checkpoint buffer and re-saves the
        # just-restored live-in registers).
        rec_block = func.add_block(label)
        rec_block.append(RestoreCheckpoints(region.id))
        rec_block.append(Jump(tramp_label))
        report.recovery_blocks.append(label)

        # 2. Entry trampoline on every edge into the region from outside:
        # publish the recovery block and save overwritten live-in
        # registers once per region activation (loop back edges inside
        # the region do not re-pay this cost).  Rewrite entry edges
        # before creating the trampoline so its own jump stays intact.
        for block in func:
            if block.label in region.blocks or block.label == label:
                continue
            term = block.terminator
            if term is not None:
                _retarget(term, region.header, tramp_label)
        entry_was_header = func.entry_label == region.header
        tramp = func.add_block(tramp_label)
        tramp.append(SetRecoveryPtr(region.id, label))
        for reg in region.live_in_checkpoints:
            tramp.append(CheckpointReg(region.id, reg))
        tramp.append(Jump(region.header))
        if entry_was_header:
            func.set_entry(tramp_label)
        report.checkpoint_reg_sites += len(region.live_in_checkpoints)

        # 3. Memory checkpoints just before each offending instruction —
        # the store's own address, or the concrete addresses a callee may
        # clobber when the offender is a call.
        mem_sites = 0
        for site in region.idem.checkpoint_sites:
            if not site.checkpointable:
                raise ValueError(
                    f"region {region.id} has non-checkpointable offender "
                    f"{site.inst}"
                )
            block = _block_containing(func, site.inst)
            index = _index_of(block, site.inst)
            for offset, ref in enumerate(site.refs):
                block.insert(index + offset, CheckpointMem(region.id, ref))
            mem_sites += len(site.refs)
        report.checkpoint_mem_sites += mem_sites

        memory_bytes = 2 * WORD_BYTES * mem_sites
        register_bytes = WORD_BYTES * len(region.live_in_checkpoints)
        # Guard storage: one checksum word per sealed record plus one
        # for the recovery pointer; "dup" additionally shadows the full
        # checkpoint buffer and the pointer word.
        records = mem_sites + len(region.live_in_checkpoints)
        if guard_level == "checksum":
            guard_bytes = WORD_BYTES * (records + 1)
        elif guard_level == "dup":
            guard_bytes = (
                WORD_BYTES * (records + 1)
                + memory_bytes + register_bytes + WORD_BYTES
            )
        else:
            guard_bytes = 0
        report.storage.append(
            RegionStorage(
                region_id=region.id,
                memory_bytes=memory_bytes,
                register_bytes=register_bytes,
                guard_bytes=guard_bytes,
            )
        )
        report.instrumented_regions += 1
        instrumented.append(region)

    # 4. Second pass: region-exit pointer invalidation.  Runs after all
    # entry-edge retargeting so successors reflect the final CFG (a
    # region exiting into a later-instrumented region's header must
    # clear at that region's trampoline, not the stale header label).
    for region in instrumented:
        func = module.function(region.func)
        own_blocks = set(region.blocks) | {
            recovery_label(region), entry_label(region)
        }
        cleared = set()
        for label in region.blocks:
            block = func.blocks.get(label)
            if block is None or block.terminator is None:
                continue
            for successor in block.successor_labels():
                if successor in own_blocks or successor in cleared:
                    continue
                cleared.add(successor)
                func.blocks[successor].insert(0, ClearRecoveryPtr(region.id))
                report.clear_sites += 1
    return report


def _block_containing(func, inst):
    for block in func:
        for candidate in block:
            if candidate is inst:
                return block
    raise ValueError(f"instruction {inst} not found in {func.name}")


def _index_of(block, inst) -> int:
    for i, candidate in enumerate(block.instructions):
        if candidate is inst:
            return i
    raise ValueError(f"instruction {inst} not found in block {block.label}")
