"""Path-insensitive idempotence analysis (paper Section 3.1).

For a SEME region the analysis computes, per node, the three sets of
Equations 1–3 and applies the violation test of Equation 4:

* ``RS`` (reachable stores)  — stores that could execute at-or-after the
  node, computed bottom-up over the region DAG (Equation 1);
* ``GA`` (guarded addresses) — addresses guaranteed overwritten on every
  path from the region entry to the node (Equation 2);
* ``EA`` (exposed addresses) — addresses possibly read by an unguarded
  load on some path from the entry to the node (Equation 3).

A region is idempotent iff ``EA(bb) ∩ RS(bb) = ∅`` for every node
(Equation 4); the stores participating in non-empty intersections form
the checkpoint set CP used by the instrumentation pass.

Loops are handled hierarchically (Section 3.1.2): each natural loop is
summarized once — with ``RS`` widened to *all* stores in the loop to
capture cross-iteration WARs, ``GA`` intersected over exiting blocks and
``EA`` unioned over exiting blocks after a fixpoint that propagates
exposure across back edges — and then treated as a pseudo basic block by
enclosing regions.

Profile-guided pruning (Section 3.4.1): blocks whose execution
probability is at or below ``Pmin`` are removed from every child set, so
statistically-dead paths cannot spoil idempotence.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.alias import AddrKey, AliasAnalysis
from repro.analysis.cfg import CFGView, topological_order
from repro.analysis.loops import Loop, LoopForest
from repro.encore.address_sets import AccessInfo, AccessSummaryBuilder, MayStore
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.values import Constant, MemRef
from repro.profiling.profile_data import ProfileData


class RegionStatus(enum.Enum):
    """Classification used throughout the evaluation (paper Figure 5)."""

    IDEMPOTENT = "idempotent"
    NON_IDEMPOTENT = "non-idempotent"
    UNKNOWN = "unknown"


@dataclasses.dataclass
class CheckpointSite:
    """One instruction whose memory effects must be checkpointed.

    For an offending store, ``refs`` is the store's own address.  For a
    call whose callee carries the WAR, ``refs`` are the concrete
    addresses the callee may clobber — checkpointed just before the call
    (the natural lift of the paper's "checkpoint just prior to s" once
    calls are summarized as pseudo-instructions).  ``checkpointable`` is
    False when an offending address cannot be named statically.
    """

    inst: Instruction
    refs: List[MemRef]
    checkpointable: bool


@dataclasses.dataclass
class IdempotenceResult:
    """Outcome of analyzing one region."""

    status: RegionStatus
    checkpoint_sites: List[CheckpointSite]
    checkpointable: bool
    rs: Dict[str, List[MayStore]]
    ga: Dict[str, Set[AddrKey]]
    ea: Dict[str, Set[AddrKey]]

    @property
    def checkpoint_stores(self) -> List[Instruction]:
        """The offending instructions (stores or calls) in the CP set."""
        return [site.inst for site in self.checkpoint_sites]

    @property
    def is_idempotent(self) -> bool:
        return self.status is RegionStatus.IDEMPOTENT


@dataclasses.dataclass
class LoopSummary:
    """Loop-wide meta-information (paper Section 3.1.2).

    ``access`` plays the role of a pseudo-basic-block's AccessInfo:
    ``may_stores`` = AS_l (every store in the loop), ``must_defs`` =
    GA_l (intersection over exiting blocks), ``exposed_uses`` = EA_l
    (union over exiting blocks).  ``violating`` collects the offending
    stores found inside the loop, including nested loops.
    """

    loop: Loop
    access: AccessInfo
    violating: List[MayStore]
    unknown: bool
    pruned: bool = False


def _node_for(label: str, loop_of: Dict[str, str]) -> str:
    return loop_of.get(label, label)


class IdempotenceAnalyzer:
    """Analyzes SEME regions of a module for (statistical) idempotence."""

    def __init__(
        self,
        module: Module,
        alias: Optional[AliasAnalysis] = None,
        profile: Optional[ProfileData] = None,
        pmin: Optional[float] = None,
    ) -> None:
        self.module = module
        self.alias = alias or AliasAnalysis(module)
        self.profile = profile
        self.pmin = pmin
        self.summaries = AccessSummaryBuilder(
            module, self.alias, profile=profile, pmin=pmin
        )
        self._cfg_cache: Dict[str, CFGView] = {}
        self._forest_cache: Dict[str, LoopForest] = {}
        self._loop_cache: Dict[Tuple[str, str], LoopSummary] = {}
        self._block_info_cache: Dict[Tuple[str, str], AccessInfo] = {}

    # -- shared per-function structures ------------------------------------

    def cfg(self, func_name: str) -> CFGView:
        if func_name not in self._cfg_cache:
            self._cfg_cache[func_name] = CFGView(self.module.function(func_name))
        return self._cfg_cache[func_name]

    def forest(self, func_name: str) -> LoopForest:
        if func_name not in self._forest_cache:
            self._forest_cache[func_name] = LoopForest(self.cfg(func_name))
        return self._forest_cache[func_name]

    def is_pruned(self, func_name: str, label: str) -> bool:
        if self.profile is None or self.pmin is None:
            return False
        return self.profile.is_pruned(func_name, label, self.pmin)

    def block_info(self, func_name: str, label: str) -> AccessInfo:
        key = (func_name, label)
        if key not in self._block_info_cache:
            func = self.module.function(func_name)
            self._block_info_cache[key] = self.summaries.block_access_info(
                func, func.blocks[label]
            )
        return self._block_info_cache[key]

    # -- public API -----------------------------------------------------------

    def analyze_region(
        self, func_name: str, blocks: FrozenSet[str], header: str
    ) -> IdempotenceResult:
        """Analyze the SEME region ``blocks`` (entered at ``header``)."""
        live_blocks = {
            b for b in blocks
            if b in self.cfg(func_name) and not self.is_pruned(func_name, b)
        }
        if header not in live_blocks:
            # The whole region is statistically dead: trivially recoverable.
            return IdempotenceResult(
                RegionStatus.IDEMPOTENT, [], True, {}, {}, {}
            )

        graph = self._collapsed_graph(func_name, live_blocks, header)
        if graph is None:
            return IdempotenceResult(
                RegionStatus.UNKNOWN, [], False, {}, {}, {}
            )
        nodes, succs, infos, inner_violations, unknown = graph

        try:
            order = topological_order(succs, [n for n in nodes])
        except ValueError:
            return IdempotenceResult(RegionStatus.UNKNOWN, [], False, {}, {}, {})

        preds: Dict[str, List[str]] = {n: [] for n in nodes}
        for n, children in succs.items():
            for c in children:
                preds[c].append(n)

        rs = self._compute_rs(order, succs, infos)
        ga = self._compute_ga(order, preds, infos, self._entry_node(header, nodes))
        ea = self._compute_ea(order, preds, infos, ga)

        pairs: List[MayStore] = list(inner_violations)
        flagged = {(id(inst), key) for inst, key in pairs}
        for node in order:
            exposed = ea[node]
            if not exposed:
                continue
            for inst, key in rs[node]:
                if (id(inst), key) in flagged:
                    continue
                if any(self.alias.may_alias(e, key) for e in exposed):
                    pairs.append((inst, key))
                    flagged.add((id(inst), key))

        sites = self._build_sites(pairs)
        if unknown:
            status = RegionStatus.UNKNOWN
        elif sites:
            status = RegionStatus.NON_IDEMPOTENT
        else:
            status = RegionStatus.IDEMPOTENT
        checkpointable = status is not RegionStatus.UNKNOWN and all(
            site.checkpointable for site in sites
        )
        return IdempotenceResult(status, sites, checkpointable, rs, ga, ea)

    def _build_sites(self, pairs: List[MayStore]) -> List[CheckpointSite]:
        """Group offending (instruction, address) pairs into checkpoint sites."""
        order: List[Instruction] = []
        keys_for: Dict[int, List[AddrKey]] = {}
        for inst, key in pairs:
            if id(inst) not in keys_for:
                keys_for[id(inst)] = []
                order.append(inst)
            if key not in keys_for[id(inst)]:
                keys_for[id(inst)].append(key)
        sites: List[CheckpointSite] = []
        for inst in order:
            if inst.opcode == "store":
                sites.append(CheckpointSite(inst, [inst.ref], True))
                continue
            refs: List[MemRef] = []
            resolvable = inst.opcode == "call"
            if resolvable:
                for key in keys_for[id(inst)]:
                    ref = self._ref_for_key(key)
                    if ref is None:
                        resolvable = False
                        break
                    if ref not in refs:
                        refs.append(ref)
            sites.append(
                CheckpointSite(inst, refs if resolvable else [], resolvable)
            )
        return sites

    def _ref_for_key(self, key: AddrKey) -> Optional[MemRef]:
        """Reconstruct a concrete memory reference for an abstract key."""
        if key.objs is None or len(key.objs) != 1:
            return None
        if not isinstance(key.index, int):
            return None
        obj = self.module.globals.get(next(iter(key.objs)))
        if obj is None:
            return None
        if not 0 <= key.index < obj.size:
            return None
        return MemRef(obj, Constant(key.index))

    # -- graph construction -----------------------------------------------------

    def _entry_node(self, header: str, nodes: Set[str]) -> str:
        loop_node = f"loop:{header}"
        return loop_node if loop_node in nodes else header

    def _collapsed_graph(
        self, func_name: str, live_blocks: Set[str], header: str
    ):
        """Build the region DAG with maximal contained loops collapsed.

        Returns ``(nodes, succs, infos, inner_violations, unknown)`` or
        ``None`` when a loop straddles the region boundary (the region is
        then unanalyzable).
        """
        cfg = self.cfg(func_name)
        forest = self.forest(func_name)
        unknown = False

        # Collapse maximal loops fully inside the region: rollback targets
        # the region entry, so a contained loop is replayed from iteration
        # zero and its cross-iteration WARs matter — the conservative loop
        # summary (RS = AS_l) applies, exactly as in paper Section 3.1.2.
        # Loops that are only partially inside are not collapsed; entries
        # through the region header from outside start a fresh activation
        # (the entry trampoline re-executes SetRecoveryPtr), so the
        # remaining in-region subgraph is acyclic for such regions.  Any
        # true in-region cycle that survives makes the topological sort
        # below fail and the region is classified unknown.
        region_loops: List[Loop] = []
        for loop in forest.top_level_loops():
            region_loops.extend(
                self._maximal_loops_in(func_name, loop, live_blocks)
            )

        loop_of: Dict[str, str] = {}
        for loop in region_loops:
            node = f"loop:{loop.header}"
            for label in loop.blocks:
                if label in live_blocks:
                    loop_of[label] = node

        infos: Dict[str, AccessInfo] = {}
        inner_violations: List[MayStore] = []
        nodes: Set[str] = set()
        for label in live_blocks:
            node = _node_for(label, loop_of)
            nodes.add(node)
        for loop in region_loops:
            if loop.header not in live_blocks:
                continue
            summary = self._loop_summary(func_name, loop)
            node = f"loop:{loop.header}"
            infos[node] = summary.access
            inner_violations.extend(summary.violating)
            unknown = unknown or summary.unknown
        for label in live_blocks:
            if label in loop_of:
                continue
            info = self.block_info(func_name, label)
            infos[label] = info
            unknown = unknown or info.unknown

        succs: Dict[str, List[str]] = {n: [] for n in nodes}
        for label in live_blocks:
            src = _node_for(label, loop_of)
            for dst_label in cfg.succs[label]:
                if dst_label not in live_blocks:
                    continue
                dst = _node_for(dst_label, loop_of)
                if dst == src:
                    continue
                if dst not in succs[src]:
                    succs[src].append(dst)
        return nodes, succs, infos, inner_violations, unknown

    def _maximal_loops_in(
        self, func_name: str, loop: Loop, live_blocks: Set[str]
    ) -> List[Loop]:
        """Maximal loops whose (non-pruned) blocks all lie in the region.

        Partially-contained loops are skipped (recursion still collapses
        their fully-contained children); whether the leftover structure
        is analyzable is decided by the topological-order check.
        """
        hot = {b for b in loop.blocks if not self.is_pruned(func_name, b)}
        if loop.header in live_blocks and hot <= live_blocks:
            return [loop]
        result: List[Loop] = []
        for child in loop.children:
            result.extend(self._maximal_loops_in(func_name, child, live_blocks))
        return result

    # -- the three set computations -----------------------------------------------

    def _compute_rs(
        self,
        order: Sequence[str],
        succs: Dict[str, List[str]],
        infos: Dict[str, AccessInfo],
    ) -> Dict[str, List[MayStore]]:
        """Equation 1, bottom-up over the DAG (post-order = reversed topo)."""
        rs: Dict[str, List[MayStore]] = {}
        for node in reversed(order):
            entries: List[MayStore] = list(infos[node].may_stores)
            seen = {id(inst) for inst, _ in entries}
            for succ in succs[node]:
                for inst, key in rs[succ]:
                    if id(inst) not in seen:
                        entries.append((inst, key))
                        seen.add(id(inst))
            rs[node] = entries
        return rs

    def _compute_ga(
        self,
        order: Sequence[str],
        preds: Dict[str, List[str]],
        infos: Dict[str, AccessInfo],
        entry: str,
    ) -> Dict[str, Set[AddrKey]]:
        """Equation 2: guarded addresses, intersected over predecessors."""
        ga: Dict[str, Set[AddrKey]] = {}
        for node in order:
            if node == entry or not preds[node]:
                ga[node] = set()
                continue
            acc: Optional[Set[AddrKey]] = None
            for p in preds[node]:
                contribution = ga[p] | set(infos[p].must_defs)
                acc = contribution if acc is None else (acc & contribution)
            ga[node] = acc or set()
        return ga

    def _compute_ea(
        self,
        order: Sequence[str],
        preds: Dict[str, List[str]],
        infos: Dict[str, AccessInfo],
        ga: Dict[str, Set[AddrKey]],
    ) -> Dict[str, Set[AddrKey]]:
        """Equation 3: exposed addresses accumulated along forward paths."""
        ea: Dict[str, Set[AddrKey]] = {}
        for node in order:
            exposed: Set[AddrKey] = set()
            for p in preds[node]:
                exposed |= ea[p]
            local = {
                key
                for key in infos[node].exposed_uses
                if not self.alias.key_in_must(key, ga[node])
            }
            ea[node] = exposed | local
        return ea

    # -- loop summaries ----------------------------------------------------------

    def _loop_summary(self, func_name: str, loop: Loop) -> LoopSummary:
        cache_key = (func_name, loop.header)
        cached = self._loop_cache.get(cache_key)
        if cached is not None:
            return cached
        summary = self._analyze_loop(func_name, loop)
        self._loop_cache[cache_key] = summary
        return summary

    def _analyze_loop(self, func_name: str, loop: Loop) -> LoopSummary:
        cfg = self.cfg(func_name)
        live = {
            b for b in loop.blocks
            if b in cfg and not self.is_pruned(func_name, b)
        }
        if loop.header not in live:
            return LoopSummary(loop, AccessInfo(), [], False, pruned=True)

        # Child loops become pseudo blocks; analyze them first.
        loop_of: Dict[str, str] = {}
        infos: Dict[str, AccessInfo] = {}
        violating: List[MayStore] = []
        unknown = False
        for child in loop.children:
            child_summary = self._loop_summary(func_name, child)
            if child_summary.pruned:
                for label in child.blocks:
                    live.discard(label)
                continue
            node = f"loop:{child.header}"
            for label in child.blocks:
                if label in live:
                    loop_of[label] = node
            infos[node] = child_summary.access
            violating.extend(child_summary.violating)
            unknown = unknown or child_summary.unknown

        nodes: Set[str] = set()
        for label in live:
            nodes.add(_node_for(label, loop_of))
        for label in live:
            if label not in loop_of:
                info = self.block_info(func_name, label)
                infos[label] = info
                unknown = unknown or info.unknown

        entry = _node_for(loop.header, loop_of)
        # Full cyclic edges (for the EA fixpoint) and acyclic edges
        # (back edges to the header removed, for GA ordering).
        cyc_succs: Dict[str, List[str]] = {n: [] for n in nodes}
        acy_succs: Dict[str, List[str]] = {n: [] for n in nodes}
        for label in live:
            src = _node_for(label, loop_of)
            for dst_label in cfg.succs[label]:
                if dst_label not in live:
                    continue
                dst = _node_for(dst_label, loop_of)
                if dst == src:
                    continue
                if dst not in cyc_succs[src]:
                    cyc_succs[src].append(dst)
                if dst != entry and dst not in acy_succs[src]:
                    acy_succs[src].append(dst)

        try:
            order = topological_order(acy_succs, [entry])
        except ValueError:
            # Irreducible structure inside the loop body.
            return LoopSummary(loop, AccessInfo(unknown=True), [], True)

        acy_preds: Dict[str, List[str]] = {n: [] for n in nodes}
        for n, children in acy_succs.items():
            for c in children:
                acy_preds[c].append(n)
        cyc_preds: Dict[str, List[str]] = {n: [] for n in nodes}
        for n, children in cyc_succs.items():
            for c in children:
                cyc_preds[c].append(n)

        ga = self._compute_ga(order, acy_preds, infos, entry)
        ea = self._compute_ea_fixpoint(nodes, cyc_preds, infos, ga, order)

        # RS inside a loop is the set of ALL stores in the loop —
        # everything is reachable across iterations (paper Section 3.1.2).
        all_stores: List[MayStore] = []
        seen_insts = set()
        for node in nodes:
            for inst, key in infos[node].may_stores:
                if id(inst) not in seen_insts:
                    all_stores.append((inst, key))
                    seen_insts.add(id(inst))

        flagged = {(id(inst), key) for inst, key in violating}
        for node in nodes:
            exposed = ea[node]
            if not exposed:
                continue
            for inst, key in all_stores:
                if (id(inst), key) in flagged:
                    continue
                if any(self.alias.may_alias(e, key) for e in exposed):
                    violating.append((inst, key))
                    flagged.add((id(inst), key))

        exiting = [
            _node_for(label, loop_of)
            for label in loop.exiting_blocks(cfg)
            if label in live
        ]
        if exiting:
            ga_l: Optional[Set[AddrKey]] = None
            ea_l: Set[AddrKey] = set()
            for x in exiting:
                leave = ga[x] | set(infos[x].must_defs)
                ga_l = leave if ga_l is None else (ga_l & leave)
                ea_l |= ea[x]
        else:
            ga_l = set()
            ea_l = set()
            for node in nodes:
                ea_l |= ea[node]

        access = AccessInfo(
            may_stores=all_stores,
            must_defs=sorted(ga_l or set(), key=str),
            exposed_uses=sorted(ea_l, key=str),
            unknown=unknown,
        )
        return LoopSummary(loop, access, violating, unknown)

    def _compute_ea_fixpoint(
        self,
        nodes: Set[str],
        preds: Dict[str, List[str]],
        infos: Dict[str, AccessInfo],
        ga: Dict[str, Set[AddrKey]],
        order: Sequence[str],
    ) -> Dict[str, Set[AddrKey]]:
        """EA over a cyclic graph: iterate Equation 3 to fixpoint.

        Back edges let exposure discovered late in an iteration flow to
        the blocks of the next iteration, capturing cross-iteration
        exposed reads.
        """
        ea: Dict[str, Set[AddrKey]] = {n: set() for n in nodes}
        local: Dict[str, Set[AddrKey]] = {}
        for node in nodes:
            local[node] = {
                key
                for key in infos[node].exposed_uses
                if not self.alias.key_in_must(key, ga[node])
            }
        changed = True
        while changed:
            changed = False
            for node in order:
                new = set(local[node])
                for p in preds[node]:
                    new |= ea[p]
                if new != ea[node]:
                    ea[node] = new
                    changed = True
        return ea
