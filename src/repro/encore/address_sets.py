"""Access summaries: the raw material of the RS/GA/EA equations.

For every basic block (and, hierarchically, every collapsed loop and
analyzable call) the idempotence analysis needs three pieces of
information (paper Section 3.1):

* ``may_stores`` — every store that may execute, *with the originating
  instruction attached* so offending stores can be collected into the
  region's checkpoint set CP;
* ``must_defs`` — addresses guaranteed to be overwritten (feeding the
  guarded-address sets, Equation 2); and
* ``exposed_uses`` — addresses read by a load not preceded (within the
  node) by a must-aliasing store: the local exposed addresses
  EA_local of Equation 3.

Calls to functions inside the module are folded in via bottom-up
function summaries (callee stack objects are frame-private and filtered
out); calls to externals poison the node as *unknown*, which later maps
to the paper's "Unknown" region classification.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.alias import AddrKey, AliasAnalysis
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module

# A may-store entry: the store (or call) instruction plus the abstract
# address it may write.
MayStore = Tuple[Instruction, AddrKey]


@dataclasses.dataclass
class AccessInfo:
    """Memory side-effects of one node (block, collapsed loop, or call)."""

    may_stores: List[MayStore] = dataclasses.field(default_factory=list)
    must_defs: List[AddrKey] = dataclasses.field(default_factory=list)
    exposed_uses: List[AddrKey] = dataclasses.field(default_factory=list)
    unknown: bool = False


@dataclasses.dataclass
class FunctionSummary:
    """Whole-function memory side-effects, used at call sites.

    ``analyzable`` is False for recursive or external-calling functions;
    call sites then mark their region unknown.  Keys referring only to
    the callee's own stack objects are excluded — each activation gets
    fresh frame storage, so they cannot carry WAR hazards to the caller.
    """

    name: str
    may_store_keys: List[AddrKey] = dataclasses.field(default_factory=list)
    must_defs: List[AddrKey] = dataclasses.field(default_factory=list)
    exposed_uses: List[AddrKey] = dataclasses.field(default_factory=list)
    analyzable: bool = True


class AccessSummaryBuilder:
    """Builds per-block :class:`AccessInfo` and bottom-up function summaries.

    When a profile and ``pmin`` are supplied, function summaries honor the
    same statistical pruning as the region analysis (paper Section 3.4.1):
    blocks at or below the execution-probability threshold contribute no
    effects, so a cold error path with a library call no longer poisons
    every caller of the function.
    """

    def __init__(
        self,
        module: Module,
        alias: AliasAnalysis,
        profile=None,
        pmin: Optional[float] = None,
    ) -> None:
        self.module = module
        self.alias = alias
        self.profile = profile
        self.pmin = pmin
        self._summaries: Dict[str, FunctionSummary] = {}
        self._in_progress: Set[str] = set()

    def _is_pruned(self, func_name: str, label: str) -> bool:
        if self.profile is None or self.pmin is None:
            return False
        return self.profile.is_pruned(func_name, label, self.pmin)

    # -- function summaries ------------------------------------------------

    def function_summary(self, name: str) -> FunctionSummary:
        if name in self._summaries:
            return self._summaries[name]
        if name in self._in_progress or self.module.is_external(name):
            # Recursion or an external: unanalyzable.
            summary = FunctionSummary(name, analyzable=False)
            self._summaries[name] = summary
            return summary
        self._in_progress.add(name)
        func = self.module.function(name)
        summary = self._summarize_function(func)
        self._in_progress.discard(name)
        self._summaries[name] = summary
        return summary

    def _summarize_function(self, func: Function) -> FunctionSummary:
        """Flow-insensitive whole-function summary (conservative).

        Must-defs would require a path-sensitive join across exits; a
        sound and simple choice is the empty set (nothing is guaranteed
        written), with may/exposed unions over all blocks.
        """
        summary = FunctionSummary(func.name)
        stack_names = set(func.stack_objects)
        for block in func:
            if self._is_pruned(func.name, block.label):
                continue
            info = self.block_access_info(func, block)
            if info.unknown:
                summary.analyzable = False
            for _inst, key in info.may_stores:
                if not _is_frame_private(key, stack_names):
                    summary.may_store_keys.append(key)
            for key in info.exposed_uses:
                if not _is_frame_private(key, stack_names):
                    summary.exposed_uses.append(key)
        if not summary.analyzable:
            summary.may_store_keys = []
            summary.exposed_uses = []
        return summary

    # -- block access info ---------------------------------------------------

    def block_access_info(
        self, func: Function, block: BasicBlock, skip_instrumentation: bool = True
    ) -> AccessInfo:
        """Extract the in-order memory effects of one basic block."""
        info = AccessInfo()
        local_must: List[AddrKey] = []
        for index, inst in enumerate(block.instructions):
            if inst.is_instrumentation and skip_instrumentation:
                continue
            site = (func.name, block.label, index)
            if inst.opcode == "load":
                key = self.alias.key(func.name, inst.ref, site=site)
                if not self.alias.key_in_must(key, set(local_must)):
                    info.exposed_uses.append(key)
            elif inst.opcode == "store":
                key = self.alias.key(func.name, inst.ref, site=site)
                info.may_stores.append((inst, key))
                if _is_must_key(key):
                    info.must_defs.append(key)
                    local_must.append(key)
            elif inst.opcode == "call":
                self._fold_call(func, inst, info, local_must)
            elif inst.opcode in ("spawn", "join"):
                # Another thread runs between a spawn and its join; its
                # writes are invisible to this analysis, so no region
                # containing a thread op can prove idempotence.
                info.unknown = True
            # Alloc creates a fresh object: no WAR hazard by construction.
        return info

    def _fold_call(self, func, inst, info: AccessInfo, local_must) -> None:
        summary = self.function_summary(inst.callee)
        if not summary.analyzable:
            info.unknown = True
            return
        for key in summary.exposed_uses:
            if not self.alias.key_in_must(key, set(local_must)):
                info.exposed_uses.append(key)
        for key in summary.may_store_keys:
            info.may_stores.append((inst, key))
        for key in summary.must_defs:
            if _is_must_key(key):
                info.must_defs.append(key)
                local_must.append(key)


def _is_must_key(key: AddrKey) -> bool:
    """A key precise enough to *guarantee* the write hits one address.

    Statically that means a single non-heap object with a known index;
    in profiled mode a site observed writing exactly one address also
    qualifies (statistical guarding, in the Pmin spirit).
    """
    if key.observed is not None and len(key.observed) == 1:
        obj, _ = next(iter(key.observed))
        if not obj.startswith("heap:"):
            return True
    return (
        key.objs is not None
        and len(key.objs) == 1
        and not next(iter(key.objs)).startswith("heap:")
        and isinstance(key.index, (int, tuple))
    )


def _is_frame_private(key: AddrKey, stack_names: Set[str]) -> bool:
    """True when every object ``key`` can touch is a callee stack object."""
    if key.objs is None:
        return False
    return all(name in stack_names for name in key.objs)
