"""Figure 8: full-system fault coverage at three detection latencies.

Per benchmark and per Dmax in {1000, 100, 10}: the fraction of all
injected transient faults that are hardware-masked, recoverable because
they landed in inherently idempotent regions, recoverable thanks to
Encore checkpointing, and not recoverable — composed from the hardware
masking model and the analytical alpha model (Equations 6-7).

Headline check: at Dmax = 100 (Shoestring/ReStore-class latencies) the
overall mean coverage should land near the paper's 97% against a ~91%
masking baseline.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.encore import EncoreConfig, apply_guard
from repro.experiments.harness import PipelineCache
from repro.experiments.reporting import Table, fmt_pct, suite_order_with_means
from repro.runtime.masking import MaskingModel

DETECTION_LATENCIES = (1000, 100, 10)


@dataclasses.dataclass
class Fig8Data:
    # benchmark -> dmax -> {"masked", "idem", "ckpt", "not_recoverable", "total"}
    coverage: Dict[str, Dict[int, Dict[str, float]]]
    latencies: Sequence[int]
    #: Metadata self-protection the coverage was modelled under.
    guard: str = "off"
    metadata_exposure: float = 0.0


def run(
    names: Optional[Sequence[str]] = None,
    latencies: Sequence[int] = DETECTION_LATENCIES,
    guard: str = "off",
    metadata_exposure: float = 0.0,
) -> Fig8Data:
    """Figure 8 coverage stacks, optionally under the metadata-fault
    model: ``metadata_exposure > 0`` degrades the checkpointed-
    recoverable slice through :func:`repro.encore.apply_guard` at the
    given ``guard`` level, adding ``meta_detected``/``meta_silent``
    keys to each cell.  The defaults reproduce the paper's figure
    (fault-free-metadata assumption) exactly.
    """
    cache = PipelineCache()
    masking = MaskingModel()
    config = EncoreConfig(metadata_guard=guard)
    coverage: Dict[str, Dict[int, Dict[str, float]]] = {}
    for result in cache.run_all(config, names):
        name = result.spec.name
        rate = masking.rate_for(name)
        coverage[name] = {}
        for dmax in latencies:
            if metadata_exposure > 0.0:
                guarded = apply_guard(
                    result.report.coverage(dmax), metadata_exposure, guard
                )
                live = 1.0 - rate
                cell = {
                    "masked": rate,
                    "idem": live * guarded.recoverable_idempotent,
                    "ckpt": live * guarded.recoverable_checkpointed,
                    "not_recoverable": live * guarded.not_recoverable,
                    "meta_detected": live * guarded.metadata_detected,
                    "meta_silent": live * guarded.metadata_silent,
                }
                cell["total"] = rate + cell["idem"] + cell["ckpt"]
            else:
                fs = result.report.full_system(dmax, rate)
                cell = {
                    "masked": fs.masked,
                    "idem": fs.recoverable_idempotent,
                    "ckpt": fs.recoverable_checkpointed,
                    "not_recoverable": fs.not_recoverable,
                    "total": fs.total_covered,
                }
            coverage[name][dmax] = cell
    return Fig8Data(coverage, latencies, guard=guard,
                    metadata_exposure=metadata_exposure)


def render(data: Fig8Data) -> str:
    columns = ["Benchmark", "Masked"]
    for dmax in data.latencies:
        columns.append(f"Cov(D={dmax})")
    columns.extend(["Idem(D=100)", "Ckpt(D=100)", "NotRec(D=100)"])

    per_benchmark = {}
    metrics = ["masked"] + [f"total_{d}" for d in data.latencies] + [
        "idem", "ckpt", "notrec",
    ]
    for name, by_dmax in data.coverage.items():
        mid = by_dmax.get(100) or next(iter(by_dmax.values()))
        row = {"masked": mid["masked"], "idem": mid["idem"],
               "ckpt": mid["ckpt"], "notrec": mid["not_recoverable"]}
        for dmax in data.latencies:
            row[f"total_{dmax}"] = by_dmax[dmax]["total"]
        per_benchmark[name] = row

    table = Table(
        "Figure 8: full-system fault coverage (% of all injected faults)",
        columns,
    )
    for label, values, is_mean in suite_order_with_means(per_benchmark, metrics):
        if is_mean:
            table.add_rule()
        cells = [label, fmt_pct(values["masked"], 2)]
        for dmax in data.latencies:
            cells.append(fmt_pct(values[f"total_{dmax}"], 2))
        cells.extend([
            fmt_pct(values["idem"], 2),
            fmt_pct(values["ckpt"], 2),
            fmt_pct(values["notrec"], 2),
        ])
        table.add_row(*cells)
        if is_mean:
            table.add_rule()
    return table.render()


def to_csv(data: Fig8Data) -> str:
    from repro.experiments.reporting import rows_to_csv

    rows = []
    for name, by_dmax in data.coverage.items():
        for dmax, row in by_dmax.items():
            rows.append(
                (name, dmax, row["masked"], row["idem"], row["ckpt"],
                 row["not_recoverable"], row["total"],
                 row.get("meta_detected", 0.0), row.get("meta_silent", 0.0))
            )
    return rows_to_csv(
        ["benchmark", "dmax", "masked", "recoverable_idempotent",
         "recoverable_checkpointed", "not_recoverable", "total_covered",
         "metadata_corrupt_detected", "metadata_corrupt_silent"],
        rows,
    )


def main(names: Optional[Sequence[str]] = None) -> str:
    output = render(run(names))
    print(output)
    return output
