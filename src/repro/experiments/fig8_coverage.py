"""Figure 8: full-system fault coverage at three detection latencies.

Per benchmark and per Dmax in {1000, 100, 10}: the fraction of all
injected transient faults that are hardware-masked, recoverable because
they landed in inherently idempotent regions, recoverable thanks to
Encore checkpointing, and not recoverable — composed from the hardware
masking model and the analytical alpha model (Equations 6-7).

Headline check: at Dmax = 100 (Shoestring/ReStore-class latencies) the
overall mean coverage should land near the paper's 97% against a ~91%
masking baseline.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.encore import EncoreConfig, apply_guard
from repro.experiments.harness import PipelineCache, run_sfi
from repro.experiments.reporting import Table, fmt_pct, suite_order_with_means
from repro.runtime.detection import DetectionModel
from repro.runtime.masking import MaskingModel

DETECTION_LATENCIES = (1000, 100, 10)

#: Default workload trio for the replay-vs-model head-to-head: small
#: enough to re-execute thousands of chunks in a test budget, and
#: covering both a codec pair and a bit-twiddling kernel.
REPLAY_WORKLOADS = ("g721decode", "rawdaudio", "epic")

#: Default trio for the control-flow fault coverage study (same size
#: rationale as the replay trio).
CFE_WORKLOADS = ("g721decode", "rawdaudio", "epic")


@dataclasses.dataclass
class Fig8Data:
    # benchmark -> dmax -> {"masked", "idem", "ckpt", "not_recoverable", "total"}
    coverage: Dict[str, Dict[int, Dict[str, float]]]
    latencies: Sequence[int]
    #: Metadata self-protection the coverage was modelled under.
    guard: str = "off"
    metadata_exposure: float = 0.0


def run(
    names: Optional[Sequence[str]] = None,
    latencies: Sequence[int] = DETECTION_LATENCIES,
    guard: str = "off",
    metadata_exposure: float = 0.0,
) -> Fig8Data:
    """Figure 8 coverage stacks, optionally under the metadata-fault
    model: ``metadata_exposure > 0`` degrades the checkpointed-
    recoverable slice through :func:`repro.encore.apply_guard` at the
    given ``guard`` level, adding ``meta_detected``/``meta_silent``
    keys to each cell.  The defaults reproduce the paper's figure
    (fault-free-metadata assumption) exactly.
    """
    cache = PipelineCache()
    masking = MaskingModel()
    config = EncoreConfig(metadata_guard=guard)
    coverage: Dict[str, Dict[int, Dict[str, float]]] = {}
    for result in cache.run_all(config, names):
        name = result.spec.name
        rate = masking.rate_for(name)
        coverage[name] = {}
        for dmax in latencies:
            if metadata_exposure > 0.0:
                guarded = apply_guard(
                    result.report.coverage(dmax), metadata_exposure, guard
                )
                live = 1.0 - rate
                cell = {
                    "masked": rate,
                    "idem": live * guarded.recoverable_idempotent,
                    "ckpt": live * guarded.recoverable_checkpointed,
                    "not_recoverable": live * guarded.not_recoverable,
                    "meta_detected": live * guarded.metadata_detected,
                    "meta_silent": live * guarded.metadata_silent,
                }
                cell["total"] = rate + cell["idem"] + cell["ckpt"]
            else:
                fs = result.report.full_system(dmax, rate)
                cell = {
                    "masked": fs.masked,
                    "idem": fs.recoverable_idempotent,
                    "ckpt": fs.recoverable_checkpointed,
                    "not_recoverable": fs.not_recoverable,
                    "total": fs.total_covered,
                }
            coverage[name][dmax] = cell
    return Fig8Data(coverage, latencies, guard=guard,
                    metadata_exposure=metadata_exposure)


@dataclasses.dataclass
class ReplayHeadToHead:
    """Measured replay detection vs the analytical alpha model.

    Per benchmark: the replay campaign's *measured* detection-latency
    distribution and covered fraction, side by side with a model
    campaign at the matched ``DetectionModel(dmax=chunk_size)`` and the
    alpha-model prediction — plus both overheads the model assumes away
    (record cost on the critical path, replayed instructions off it).
    """

    # benchmark -> {"measured_mean_latency", "measured_p50_latency",
    #   "measured_p90_latency", "measured_max_latency",
    #   "model_mean_latency", "replay_covered", "model_covered",
    #   "alpha_predicted", "record_overhead", "replay_overhead",
    #   "divergence_rate"}
    rows: Dict[str, Dict[str, float]]
    chunk_size: int
    trials: int
    seed: int


def run_replay_headtohead(
    names: Optional[Sequence[str]] = None,
    chunk_size: int = 64,
    trials: int = 80,
    seed: int = 11,
) -> ReplayHeadToHead:
    """Run matched model/replay campaigns and collect the comparison.

    Both campaigns share the seed, so their fault plans are
    draw-for-draw identical (sites and bits; replay discards the
    latency draws) — any coverage difference is purely the detector.
    The model campaign runs at ``DetectionModel(dmax=chunk_size)``:
    uniform latencies on ``[0, chunk]``, mean ``chunk/2``, the exact
    analytical stand-in for a replay check every ``chunk`` instructions.
    """
    from repro.runtime.replay import record_chunk_log

    cache = PipelineCache()
    detector = DetectionModel(dmax=chunk_size)
    rows: Dict[str, Dict[str, float]] = {}
    for result in cache.run_all(EncoreConfig(), names or REPLAY_WORKLOADS):
        built = result.built
        module = result.report.module
        kwargs = dict(
            function=built.entry,
            args=built.args,
            output_objects=built.output_objects,
            externals=built.externals,
            detector=detector,
            trials=trials,
            seed=seed,
        )
        model = run_sfi(module, **kwargs)
        replay = run_sfi(
            module, detector_backend="replay", replay_chunk_size=chunk_size,
            **kwargs,
        )
        latencies = sorted(
            t.detect_latency for t in replay.trials
            if t.detect_latency is not None
        )
        # Record-side overhead, measured on a fault-free run.
        recorded, recorder = record_chunk_log(
            module, built.entry, built.args, built.output_objects,
            chunk_size=chunk_size, externals=built.externals,
        )
        # Trapped/hung trials are detected by the symptom path before
        # any replay check runs (the recorder resyncs); the divergence
        # rate is the replay detector's hit rate on the trials it
        # actually had to catch.
        struck = [
            t for t in replay.trials
            if t.fault_event >= 0 and not t.trapped and not t.hang
        ]
        rows[result.spec.name] = {
            "measured_mean_latency": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "measured_p50_latency": (
                float(latencies[len(latencies) // 2]) if latencies else 0.0
            ),
            "measured_p90_latency": (
                float(latencies[(len(latencies) * 9) // 10])
                if latencies else 0.0
            ),
            "measured_max_latency": float(latencies[-1]) if latencies else 0.0,
            # The uniform-[0, Dmax] model's expectation at matched Dmax.
            "model_mean_latency": chunk_size / 2.0,
            "replay_covered": replay.covered_fraction,
            "model_covered": model.covered_fraction,
            "alpha_predicted": result.report.coverage(chunk_size).recoverable,
            "record_overhead": (
                recorder.record_cost / recorded.cost if recorded.cost else 0.0
            ),
            "replay_overhead": (
                sum(t.replay_overhead for t in replay.trials)
                / (len(replay.trials) * max(recorded.events, 1))
            ),
            "divergence_rate": (
                sum(1 for t in struck if t.replay_divergences) / len(struck)
                if struck else 0.0
            ),
        }
    return ReplayHeadToHead(rows, chunk_size, trials, seed)


def render_replay(data: ReplayHeadToHead) -> str:
    table = Table(
        f"Replay detection vs alpha model "
        f"(chunk={data.chunk_size}, {data.trials} trials/benchmark)",
        ["Benchmark", "MeasLat(mean)", "MeasLat(max)", "ModelLat(mean)",
         "Cov(replay)", "Cov(model)", "Cov(alpha)", "RecordOvh", "ReplayOvh"],
    )
    for name in sorted(data.rows):
        row = data.rows[name]
        table.add_row(
            name,
            f"{row['measured_mean_latency']:.1f}",
            f"{row['measured_max_latency']:.0f}",
            f"{row['model_mean_latency']:.1f}",
            fmt_pct(row["replay_covered"], 2),
            fmt_pct(row["model_covered"], 2),
            fmt_pct(row["alpha_predicted"], 2),
            fmt_pct(row["record_overhead"], 2),
            fmt_pct(row["replay_overhead"], 2),
        )
    return table.render()


def replay_to_csv(data: ReplayHeadToHead) -> str:
    from repro.experiments.reporting import rows_to_csv

    keys = ["measured_mean_latency", "measured_p50_latency",
            "measured_p90_latency", "measured_max_latency",
            "model_mean_latency", "replay_covered", "model_covered",
            "alpha_predicted", "record_overhead", "replay_overhead",
            "divergence_rate"]
    return rows_to_csv(
        ["benchmark"] + keys,
        [
            tuple([name] + [data.rows[name][k] for k in keys])
            for name in sorted(data.rows)
        ],
    )


@dataclasses.dataclass
class CfeCoverage:
    """Empirical coverage of the control-flow fault surface.

    Per benchmark, an SFI campaign injecting one control-flow fault per
    trial (corrupted branch targets and wrong-way branches, no register
    faults) is run twice: with the branch-signature monitor armed and
    with CFE detection left to traps alone.  The delta between the two
    ``covered`` columns is the signature monitor's contribution; the
    ``silent`` columns bound what it structurally cannot see (wrong-way
    branches follow legal CFG edges).
    """

    # benchmark -> {"covered_signature", "covered_off",
    #   "detected_recovered_signature", "detected_recovered_off",
    #   "silent_signature", "silent_off", "wild_trap_signature",
    #   "detections_per_trial"}
    rows: Dict[str, Dict[str, float]]
    trials: int
    seed: int


def run_cfe_coverage(
    names: Optional[Sequence[str]] = None,
    trials: int = 120,
    seed: int = 11,
) -> CfeCoverage:
    """Matched signature-on/signature-off control-flow fault campaigns.

    Both campaigns share the seed, so their fault plans are
    draw-for-draw identical — any coverage difference is purely the
    detector.
    """
    cache = PipelineCache()
    rows: Dict[str, Dict[str, float]] = {}
    for result in cache.run_all(EncoreConfig(), names or CFE_WORKLOADS):
        built = result.built
        module = result.report.module
        kwargs = dict(
            function=built.entry,
            args=built.args,
            output_objects=built.output_objects,
            externals=built.externals,
            trials=trials,
            seed=seed,
            faults_per_trial=0,
            cf_faults_per_trial=1,
        )
        signature = run_sfi(module, cfe_detector="signature", **kwargs)
        off = run_sfi(module, cfe_detector="off", **kwargs)
        rows[result.spec.name] = {
            "covered_signature": signature.covered_fraction,
            "covered_off": off.covered_fraction,
            "detected_recovered_signature": signature.fraction(
                "cfe_detected_recovered"
            ),
            "detected_recovered_off": off.fraction("cfe_detected_recovered"),
            "silent_signature": signature.fraction("cfe_silent"),
            "silent_off": off.fraction("cfe_silent"),
            "wild_trap_signature": signature.fraction("cfe_wild_trap"),
            "detections_per_trial": (
                sum(t.cfe_detections for t in signature.trials)
                / max(len(signature.trials), 1)
            ),
        }
    return CfeCoverage(rows, trials, seed)


def render_cfe(data: CfeCoverage) -> str:
    table = Table(
        f"Control-flow fault coverage: signature monitor vs traps only "
        f"({data.trials} trials/benchmark)",
        ["Benchmark", "Cov(sig)", "Cov(off)", "Rec(sig)", "Rec(off)",
         "Silent(sig)", "Silent(off)", "Wild", "Det/trial"],
    )
    for name in sorted(data.rows):
        row = data.rows[name]
        table.add_row(
            name,
            fmt_pct(row["covered_signature"], 2),
            fmt_pct(row["covered_off"], 2),
            fmt_pct(row["detected_recovered_signature"], 2),
            fmt_pct(row["detected_recovered_off"], 2),
            fmt_pct(row["silent_signature"], 2),
            fmt_pct(row["silent_off"], 2),
            fmt_pct(row["wild_trap_signature"], 2),
            f"{row['detections_per_trial']:.2f}",
        )
    return table.render()


def cfe_to_csv(data: CfeCoverage) -> str:
    from repro.experiments.reporting import rows_to_csv

    keys = ["covered_signature", "covered_off",
            "detected_recovered_signature", "detected_recovered_off",
            "silent_signature", "silent_off", "wild_trap_signature",
            "detections_per_trial"]
    return rows_to_csv(
        ["benchmark"] + keys,
        [
            tuple([name] + [data.rows[name][k] for k in keys])
            for name in sorted(data.rows)
        ],
    )


@dataclasses.dataclass
class IncrementalCoverage:
    """Compositional re-analysis of the Figure 8 fault campaigns.

    Per benchmark: a full campaign builds the per-section store, then a
    second campaign against the *unchanged* binary composes entirely
    from it — zero trials executed, ``composed_fraction`` 1.0, and a
    covered fraction identical to the full campaign's (the no-change
    identity the incremental subsystem guarantees).  The stratified
    Horvitz–Thompson coverage estimate and its 95% CI come along so the
    figure can carry error bars.
    """

    # benchmark -> {"full_covered", "composed_covered", "estimate",
    #   "ci_half", "composed_fraction", "executed_trials", "sections"}
    rows: Dict[str, Dict[str, float]]
    trials: int
    seed: int


def run_incremental_coverage(
    names: Optional[Sequence[str]] = None,
    trials: int = 120,
    seed: int = 11,
) -> IncrementalCoverage:
    """Build each benchmark's section store, then compose from it.

    Both campaigns share the seed; the composed run's pooled outcome
    fractions must equal the full run's exactly (integer tallies are
    carried per section, not rounded fractions).
    """
    import tempfile

    from repro.experiments.harness import run_sfi_incremental

    cache = PipelineCache()
    rows: Dict[str, Dict[str, float]] = {}
    with tempfile.TemporaryDirectory(prefix="encore-inc-") as tmp:
        for result in cache.run_all(EncoreConfig(), names or REPLAY_WORKLOADS):
            built = result.built
            module = result.report.module
            store = f"{tmp}/{result.spec.name}.store.json"
            kwargs = dict(
                function=built.entry,
                args=built.args,
                output_objects=built.output_objects,
                externals=built.externals,
                trials=trials,
                seed=seed,
            )
            full = run_sfi_incremental(module, store, **kwargs)
            composed = run_sfi_incremental(module, store, **kwargs)
            estimate, half = composed.coverage_interval()
            rows[result.spec.name] = {
                "full_covered": full.covered_fraction,
                "composed_covered": composed.covered_fraction,
                "estimate": estimate,
                "ci_half": half,
                "composed_fraction": composed.composed_fraction,
                "executed_trials": float(composed.executed_trials),
                "sections": float(len(composed.section_records)),
            }
    return IncrementalCoverage(rows, trials, seed)


def render_incremental(data: IncrementalCoverage) -> str:
    table = Table(
        f"Incremental composition vs full campaign "
        f"({data.trials} trials/benchmark)",
        ["Benchmark", "Cov(full)", "Cov(composed)", "HT estimate",
         "95% CI", "Composed", "Exec", "Sections"],
    )
    for name in sorted(data.rows):
        row = data.rows[name]
        table.add_row(
            name,
            fmt_pct(row["full_covered"], 2),
            fmt_pct(row["composed_covered"], 2),
            fmt_pct(row["estimate"], 2),
            f"+/-{row['ci_half'] * 100.0:.2f}pp",
            fmt_pct(row["composed_fraction"], 1),
            f"{row['executed_trials']:.0f}",
            f"{row['sections']:.0f}",
        )
    return table.render()


def incremental_to_csv(data: IncrementalCoverage) -> str:
    from repro.experiments.reporting import rows_to_csv

    keys = ["full_covered", "composed_covered", "estimate", "ci_half",
            "composed_fraction", "executed_trials", "sections"]
    return rows_to_csv(
        ["benchmark"] + keys,
        [
            tuple([name] + [data.rows[name][k] for k in keys])
            for name in sorted(data.rows)
        ],
    )


def render(data: Fig8Data) -> str:
    columns = ["Benchmark", "Masked"]
    for dmax in data.latencies:
        columns.append(f"Cov(D={dmax})")
    columns.extend(["Idem(D=100)", "Ckpt(D=100)", "NotRec(D=100)"])

    per_benchmark = {}
    metrics = ["masked"] + [f"total_{d}" for d in data.latencies] + [
        "idem", "ckpt", "notrec",
    ]
    for name, by_dmax in data.coverage.items():
        mid = by_dmax.get(100) or next(iter(by_dmax.values()))
        row = {"masked": mid["masked"], "idem": mid["idem"],
               "ckpt": mid["ckpt"], "notrec": mid["not_recoverable"]}
        for dmax in data.latencies:
            row[f"total_{dmax}"] = by_dmax[dmax]["total"]
        per_benchmark[name] = row

    table = Table(
        "Figure 8: full-system fault coverage (% of all injected faults)",
        columns,
    )
    for label, values, is_mean in suite_order_with_means(per_benchmark, metrics):
        if is_mean:
            table.add_rule()
        cells = [label, fmt_pct(values["masked"], 2)]
        for dmax in data.latencies:
            cells.append(fmt_pct(values[f"total_{dmax}"], 2))
        cells.extend([
            fmt_pct(values["idem"], 2),
            fmt_pct(values["ckpt"], 2),
            fmt_pct(values["notrec"], 2),
        ])
        table.add_row(*cells)
        if is_mean:
            table.add_rule()
    return table.render()


def to_csv(data: Fig8Data) -> str:
    from repro.experiments.reporting import rows_to_csv

    rows = []
    for name, by_dmax in data.coverage.items():
        for dmax, row in by_dmax.items():
            rows.append(
                (name, dmax, row["masked"], row["idem"], row["ckpt"],
                 row["not_recoverable"], row["total"],
                 row.get("meta_detected", 0.0), row.get("meta_silent", 0.0))
            )
    return rows_to_csv(
        ["benchmark", "dmax", "masked", "recoverable_idempotent",
         "recoverable_checkpointed", "not_recoverable", "total_covered",
         "metadata_corrupt_detected", "metadata_corrupt_silent"],
        rows,
    )


def main(names: Optional[Sequence[str]] = None) -> str:
    output = render(run(names))
    print(output)
    return output
