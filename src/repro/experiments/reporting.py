"""Shared table formatting for the experiment harnesses.

Every experiment renders its results the way the paper presents them:
benchmarks in suite order (SPEC2K-INT, SPEC2K-FP, MEDIABENCH) with a
per-suite Mean row after each group, matching the figures' layout.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.workloads import all_workloads, suites


def fmt_pct(value: float, digits: int = 1) -> str:
    return f"{value * 100:.{digits}f}%"


def fmt_num(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}"


@dataclasses.dataclass
class Table:
    """A simple fixed-width text table."""

    title: str
    columns: List[str]
    rows: List[List[str]] = dataclasses.field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def add_rule(self) -> None:
        self.rows.append(["---"])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            if row == ["---"]:
                continue
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, ""]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            if row == ["---"]:
                lines.append("-" * len(header))
                continue
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def suite_order_with_means(
    per_benchmark: Dict[str, Dict[str, float]],
    metrics: Sequence[str],
) -> List[tuple]:
    """Order benchmark rows by suite and append per-suite mean rows.

    Returns ``(label, values, is_mean)`` tuples where ``values`` maps
    metric name to value.
    """
    rows: List[tuple] = []
    for suite in suites():
        members = [
            spec.name for spec in all_workloads()
            if spec.suite == suite and spec.name in per_benchmark
        ]
        for name in members:
            rows.append((name, per_benchmark[name], False))
        if members:
            mean = {
                metric: sum(per_benchmark[m][metric] for m in members) / len(members)
                for metric in metrics
            }
            rows.append((f"{suite} Mean", mean, True))
    all_names = [s.name for s in all_workloads() if s.name in per_benchmark]
    if all_names:
        overall = {
            metric: sum(per_benchmark[n][metric] for n in all_names) / len(all_names)
            for metric in metrics
        }
        rows.append(("Overall Mean", overall, True))
    return rows


def csv_escape(cell) -> str:
    text = str(cell)
    if any(ch in text for ch in ",\"\n"):
        return '"' + text.replace('"', '""') + '"'
    return text


def rows_to_csv(header: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as CSV text (header first)."""
    lines = [",".join(csv_escape(c) for c in header)]
    for row in rows:
        lines.append(",".join(csv_escape(c) for c in row))
    return "\n".join(lines) + "\n"
