"""Shared experiment plumbing: build → profile → compile, with caching.

Experiments frequently need the same (workload, configuration) pipeline
result; :class:`PipelineCache` memoizes them for the lifetime of one
experiment run so the Figure 5 Pmin sweep and the Figure 7 alias-mode
comparison don't recompute each other's work.
"""

from __future__ import annotations

import copy
import dataclasses
import os
import sys
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.encore import EncoreConfig, EncoreReport, compile_for_encore
from repro.ir.module import Module
from repro.pipeline import AnalysisCache, PipelineStats
from repro.runtime import (
    CampaignResult,
    DetectionModel,
    SupervisorPolicy,
    run_campaign,
)
from repro.workloads import WorkloadSpec, all_workloads
from repro.workloads.synth import BuiltWorkload


def config_key(config: EncoreConfig) -> tuple:
    """Hashable identity of a configuration, derived from its fields.

    Enumerating ``dataclasses.fields`` means a new :class:`EncoreConfig`
    knob can never be silently missing from the key (the old
    hand-maintained tuple could go stale).
    """
    return tuple(
        getattr(config, field.name)
        for field in dataclasses.fields(EncoreConfig)
    )


@dataclasses.dataclass
class PipelineResult:
    spec: WorkloadSpec
    built: BuiltWorkload
    report: EncoreReport


class PipelineCache:
    """Memoized (workload, config) -> pipeline report.

    Two layers: an identity memo on ``(workload, config_key)`` so
    repeated requests return the same :class:`PipelineResult`, and a
    shared :class:`repro.pipeline.AnalysisCache` underneath so even
    *distinct* configurations of the same workload reuse
    config-independent products — the training profile is executed once
    per workload, not once per sweep point, and idempotence verdicts
    are shared between configurations that agree on ``(pmin,
    alias_mode)``.  ``stats`` aggregates per-pass timing across every
    compilation this cache has run.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, tuple], PipelineResult] = {}
        self._analysis = AnalysisCache()
        self.stats = PipelineStats()

    def run(self, spec: WorkloadSpec, config: EncoreConfig) -> PipelineResult:
        key = (spec.name, config_key(config))
        if key not in self._cache:
            built = spec.build()
            report = compile_for_encore(
                built.module,
                copy.deepcopy(config),
                clone=False,
                cache=self._analysis,
                function=built.entry,
                args=built.args,
                externals=built.externals,
                stats=self.stats,
            )
            self._cache[key] = PipelineResult(spec, built, report)
        return self._cache[key]

    def run_all(
        self,
        config: EncoreConfig,
        names: Optional[Sequence[str]] = None,
    ) -> List[PipelineResult]:
        specs = all_workloads()
        if names is not None:
            wanted = set(names)
            specs = [s for s in specs if s.name in wanted]
        return [self.run(spec, config) for spec in specs]


def default_config(**overrides) -> EncoreConfig:
    """The paper's evaluation configuration: Pmin=0.0, ~20% budget."""
    return EncoreConfig(**overrides)


def campaign_jobs(default: Optional[int] = None) -> int:
    """Worker-process count for SFI campaigns.

    ``ENCORE_SFI_JOBS`` overrides everything (``0``/``all`` meaning
    every core), so figure/table reproductions exploit all cores with
    no code change; otherwise ``default`` applies, and the fallback is
    the serial path.  Campaign results are identical for any value.
    """
    env = os.environ.get("ENCORE_SFI_JOBS", "").strip()
    if env:
        if env.lower() in ("0", "all"):
            return os.cpu_count() or 1
        return max(1, int(env))
    if default is not None:
        return max(1, default)
    return 1


def campaign_trial_timeout() -> Optional[float]:
    """Per-trial wall-clock guard for experiment campaigns.

    ``ENCORE_SFI_TRIAL_TIMEOUT`` (seconds) arms the guard fleet-wide —
    useful on shared CI machines where one wedged trial should become
    an ``infra_error`` row instead of a job timeout.  Unset means no
    guard, preserving fully deterministic experiment output.
    """
    env = os.environ.get("ENCORE_SFI_TRIAL_TIMEOUT", "").strip()
    if env:
        value = float(env)
        if value > 0:
            return value
    return None


def campaign_server() -> Optional[str]:
    """URL of a ``repro serve`` instance, or None for local execution.

    ``ENCORE_SFI_SERVER`` routes every experiment campaign through the
    sharded, health-monitored campaign server — useful when a figure
    sweep should survive worker crashes, or when campaigns from several
    experiment processes should share one supervised pool.  Campaign
    results are bit-identical either way.
    """
    env = os.environ.get("ENCORE_SFI_SERVER", "").strip()
    return env or None


def _run_sfi_via_server(
    server: str,
    module: Module,
    *,
    function: str,
    args: Sequence,
    output_objects: Sequence[str],
    detector: Optional[DetectionModel],
    trials: int,
    seed: int,
    faults_per_trial: int,
    recovery_faults_per_trial: int,
    metadata_faults_per_trial: int,
    metadata_guard: str,
    policy: Optional[SupervisorPolicy],
    trial_timeout: Optional[float],
    engine: Optional[str],
    detector_backend: str,
    replay_chunk_size: Optional[int],
    cf_faults_per_trial: int,
    cfe_detector: str,
    threads: int,
    quantum: Optional[int],
) -> CampaignResult:
    """Submit the campaign over HTTP and rebuild a CampaignResult.

    The journal downloaded from the server is byte-identical to a local
    ``--journal`` run, so loading it back through
    :func:`repro.runtime.load_journal` reproduces the exact TrialResult
    list a local campaign would have returned.
    """
    from repro.ir.printer import module_to_text
    from repro.runtime.journal import load_journal
    from repro.service.client import ServiceClient, ServiceError

    detector = detector or DetectionModel()
    policy = policy or SupervisorPolicy()
    spec = {
        "kind": "sfi",
        "module_text": module_to_text(module) + "\n",
        "function": function,
        "args": [int(a) for a in args],
        "output_objects": list(output_objects),
        "trials": trials,
        "seed": seed,
        "dmax": detector.dmax,
        "detector_kind": detector.kind,
        "detector_coverage": detector.coverage,
        "faults_per_trial": faults_per_trial,
        "recovery_faults_per_trial": recovery_faults_per_trial,
        "metadata_faults_per_trial": metadata_faults_per_trial,
        "metadata_guard": metadata_guard,
        "detector_backend": detector_backend,
        "replay_chunk_size": replay_chunk_size,
        "cf_faults_per_trial": cf_faults_per_trial,
        "cfe_detector": cfe_detector,
        "threads": threads,
        "quantum": quantum,
        "max_attempts": policy.max_attempts,
        "step_budget": policy.attempt_step_budget,
        "trial_timeout": trial_timeout,
        "engine": engine,
    }
    client = ServiceClient(server)
    accepted = client.submit(spec)
    campaign_id = accepted["id"]
    status = client.wait(campaign_id, timeout=3600.0)
    if status.get("state") != "completed":
        raise ServiceError(
            f"campaign {campaign_id} ended {status.get('state')!r}: "
            f"{status.get('error')}"
        )
    data = client.fetch_journal(campaign_id, follow=False)
    with tempfile.NamedTemporaryFile(
        suffix=".jsonl", prefix="encore-served-", delete=False
    ) as handle:
        handle.write(data)
        path = handle.name
    try:
        _metadata, completed = load_journal(path)
    finally:
        os.unlink(path)
    if len(completed) != trials:
        raise ServiceError(
            f"campaign {campaign_id} journal holds {len(completed)} "
            f"trials, expected {trials}"
        )
    aggregates = status.get("aggregates", {})
    return CampaignResult(
        trials=[completed[i] for i in range(trials)],
        elapsed=float(aggregates.get("elapsed_s", 0.0)),
        jobs=len(status.get("workers", ())) or 1,
        worker_trials={
            f"server-{server}": trials,
        },
        pool_restarts=int(status.get("worker_restarts", 0)),
    )


def run_sfi(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    detector: Optional[DetectionModel] = None,
    trials: int = 200,
    seed: int = 0,
    faults_per_trial: int = 1,
    recovery_faults_per_trial: int = 0,
    metadata_faults_per_trial: int = 0,
    metadata_guard: str = "off",
    externals=None,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    policy: Optional[SupervisorPolicy] = None,
    trial_timeout: Optional[float] = None,
    engine: Optional[str] = None,
    detector_backend: str = "model",
    replay_chunk_size: Optional[int] = None,
    cf_faults_per_trial: int = 0,
    cfe_detector: str = "signature",
    threads: int = 1,
    quantum: Optional[int] = None,
) -> CampaignResult:
    """SFI campaign entry point for experiments and benchmarks.

    Identical to :func:`repro.runtime.run_campaign` except that
    ``jobs=None`` resolves through :func:`campaign_jobs` and
    ``trial_timeout=None`` through :func:`campaign_trial_timeout`, so
    environment variables parallelise and wall-clock-guard every
    campaign an experiment runs.  ``engine=None`` defers to the session
    default (``ENCORE_ENGINE`` or the fast engine).

    When ``ENCORE_SFI_SERVER`` names a running ``repro serve``
    instance, the campaign is submitted there instead and the result
    rebuilt from the downloaded journal — bit-identical to local
    execution.  Campaigns the server cannot express (host-callable
    ``externals``) and unreachable servers fall back to local execution
    with a warning on stderr.
    """
    server = campaign_server()
    if server is not None and not externals:
        from repro.service.client import ServiceError

        try:
            return _run_sfi_via_server(
                server,
                module,
                function=function,
                args=args,
                output_objects=output_objects,
                detector=detector,
                trials=trials,
                seed=seed,
                faults_per_trial=faults_per_trial,
                recovery_faults_per_trial=recovery_faults_per_trial,
                metadata_faults_per_trial=metadata_faults_per_trial,
                metadata_guard=metadata_guard,
                policy=policy,
                trial_timeout=(
                    campaign_trial_timeout()
                    if trial_timeout is None else trial_timeout
                ),
                engine=engine,
                detector_backend=detector_backend,
                replay_chunk_size=replay_chunk_size,
                cf_faults_per_trial=cf_faults_per_trial,
                cfe_detector=cfe_detector,
                threads=threads,
                quantum=quantum,
            )
        except ServiceError as exc:
            print(
                f"# ENCORE_SFI_SERVER={server} unusable ({exc}); "
                "running campaign locally",
                file=sys.stderr,
            )
    elif server is not None and externals:
        print(
            f"# ENCORE_SFI_SERVER={server} skipped: campaign uses host "
            "externals the server cannot transport; running locally",
            file=sys.stderr,
        )
    return run_campaign(
        module,
        function=function,
        args=args,
        output_objects=output_objects,
        detector=detector,
        trials=trials,
        seed=seed,
        faults_per_trial=faults_per_trial,
        recovery_faults_per_trial=recovery_faults_per_trial,
        metadata_faults_per_trial=metadata_faults_per_trial,
        metadata_guard=metadata_guard,
        externals=externals,
        jobs=campaign_jobs() if jobs is None else jobs,
        chunk_size=chunk_size,
        policy=policy,
        trial_timeout=(
            campaign_trial_timeout() if trial_timeout is None else trial_timeout
        ),
        engine=engine,
        detector_backend=detector_backend,
        replay_chunk_size=replay_chunk_size,
        cf_faults_per_trial=cf_faults_per_trial,
        cfe_detector=cfe_detector,
        threads=threads,
        quantum=quantum,
    )

def run_sfi_incremental(
    module: Module,
    store,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    detector: Optional[DetectionModel] = None,
    trials: int = 200,
    seed: int = 0,
    externals=None,
    jobs: Optional[int] = None,
    min_section_trials: int = 8,
    update_store: bool = True,
    engine: Optional[str] = None,
):
    """Incremental SFI campaign entry point for experiments.

    ``store`` is a path (opened/created in place) or an already-open
    :class:`repro.incremental.SectionStore`.  Like :func:`run_sfi`,
    ``jobs=None`` resolves through :func:`campaign_jobs` and the trial
    timeout through :func:`campaign_trial_timeout`; unlike
    :func:`run_sfi` there is no server path — the store lives on the
    local filesystem and composition is cheaper than transport.
    Returns a :class:`repro.incremental.ComposedCampaign` whose
    ``composed_fraction``/``executed_trials`` fields quantify the work
    the store saved.
    """
    from repro.incremental import SectionStore, run_incremental_campaign

    if isinstance(store, (str, os.PathLike)):
        store = SectionStore.open(os.fspath(store))
    return run_incremental_campaign(
        module,
        store,
        function=function,
        args=args,
        output_objects=output_objects,
        detector=detector,
        trials=trials,
        seed=seed,
        externals=externals,
        jobs=campaign_jobs() if jobs is None else jobs,
        trial_timeout=campaign_trial_timeout(),
        engine=engine,
        min_section_trials=min_section_trials,
        update_store=update_store,
    )
