"""Shared experiment plumbing: build → profile → compile, with caching.

Experiments frequently need the same (workload, configuration) pipeline
result; :class:`PipelineCache` memoizes them for the lifetime of one
experiment run so the Figure 5 Pmin sweep and the Figure 7 alias-mode
comparison don't recompute each other's work.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.encore import EncoreConfig, EncoreReport, compile_for_encore
from repro.workloads import WorkloadSpec, all_workloads
from repro.workloads.synth import BuiltWorkload


def config_key(config: EncoreConfig) -> tuple:
    return (
        config.pmin,
        config.gamma,
        config.eta,
        config.overhead_budget,
        config.auto_tune,
        config.alias_mode,
        config.merge_regions,
        config.max_region_length,
        config.granularity,
    )


@dataclasses.dataclass
class PipelineResult:
    spec: WorkloadSpec
    built: BuiltWorkload
    report: EncoreReport


class PipelineCache:
    """Memoized (workload, config) -> pipeline report."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, tuple], PipelineResult] = {}

    def run(self, spec: WorkloadSpec, config: EncoreConfig) -> PipelineResult:
        key = (spec.name, config_key(config))
        if key not in self._cache:
            built = spec.build()
            report = compile_for_encore(
                built.module,
                copy.deepcopy(config),
                clone=False,
                function=built.entry,
                args=built.args,
                externals=built.externals,
            )
            self._cache[key] = PipelineResult(spec, built, report)
        return self._cache[key]

    def run_all(
        self,
        config: EncoreConfig,
        names: Optional[Sequence[str]] = None,
    ) -> List[PipelineResult]:
        specs = all_workloads()
        if names is not None:
            wanted = set(names)
            specs = [s for s in specs if s.name in wanted]
        return [self.run(spec, config) for spec in specs]


def default_config(**overrides) -> EncoreConfig:
    """The paper's evaluation configuration: Pmin=0.0, ~20% budget."""
    return EncoreConfig(**overrides)
