"""Table 1: Encore vs. conventional checkpointing schemes.

The enterprise and architectural columns are the paper's published
characteristics; the Encore column is *measured* from this
implementation — interval lengths from selected-region activation
lengths and storage from the instrumentation report — so the table
doubles as a sanity check that our regions land in the paper's
100-1000-instruction / 10-100-byte envelope.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.encore import EncoreConfig
from repro.experiments.harness import PipelineCache
from repro.experiments.reporting import Table


@dataclasses.dataclass
class Table1Data:
    interval_min: float
    interval_max: float
    interval_mean: float
    storage_min: float
    storage_max: float
    storage_mean: float


def run(
    names: Optional[Sequence[str]] = None,
    config: Optional[EncoreConfig] = None,
) -> Table1Data:
    """Measure interval lengths and checkpoint storage.

    Passing ``config=EncoreConfig(metadata_guard="checksum")`` (or
    ``"dup"``) sizes the metadata guard's seal/shadow storage into the
    per-region footprint, quantifying the self-protection storage cost
    against the paper's 10-100 B envelope.
    """
    cache = PipelineCache()
    lengths: List[float] = []
    storages: List[float] = []
    for result in cache.run_all(config or EncoreConfig(), names):
        for region in result.report.selected_regions:
            if region.dyn_instructions > 0:
                lengths.append(region.activation_length)
        for s in result.report.instrumentation.storage:
            storages.append(s.total_bytes)
    if not lengths:
        lengths = [0.0]
    if not storages:
        storages = [0.0]
    return Table1Data(
        interval_min=min(lengths),
        interval_max=max(lengths),
        interval_mean=sum(lengths) / len(lengths),
        storage_min=min(storages),
        storage_max=max(storages),
        storage_mean=sum(storages) / len(storages),
    )


def render(data: Table1Data) -> str:
    table = Table(
        "Table 1: Comparison with conventional checkpointing schemes",
        ["Attribute", "Enterprise Recovery", "Architectural Recovery", "Encore (measured)"],
    )
    table.add_row(
        "Interval Length",
        "~hours",
        "100-500K instructions",
        f"{data.interval_min:.0f}-{data.interval_max:.0f} instructions "
        f"(mean {data.interval_mean:.0f}; paper: 100-1000)",
    )
    table.add_row(
        "Storage Space",
        "0.5 - 1 GB",
        "0.5 - 1 MB",
        f"{data.storage_min:.0f}-{data.storage_max:.0f} B per region "
        f"(mean {data.storage_mean:.0f} B; paper: ~10-100 B)",
    )
    table.add_row("Checkpoint Time", "~minutes", "~ms", "~ns (a handful of stores)")
    table.add_row("Scope", "Full System", "Processor", "Processor")
    table.add_row("Guaranteed Recovery", "Yes", "Yes", "No")
    table.add_row("Extra Hardware", "Sometimes", "Yes", "No")
    return table.render()


def to_csv(data: Table1Data) -> str:
    from repro.experiments.reporting import rows_to_csv

    rows = [
        ("interval_length_instructions", data.interval_min,
         data.interval_mean, data.interval_max),
        ("storage_bytes_per_region", data.storage_min,
         data.storage_mean, data.storage_max),
    ]
    return rows_to_csv(["attribute", "min", "mean", "max"], rows)


def main(names: Optional[Sequence[str]] = None) -> str:
    output = render(run(names))
    print(output)
    return output
