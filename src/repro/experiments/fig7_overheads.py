"""Figure 7: Encore runtime and storage overheads.

7(a): runtime overhead in dynamic instructions, under the conservative
static alias analysis vs. the optimistic (perfect-disambiguator) bound.
Both the profile-based estimate and the *measured* overhead from
executing the instrumented binary are reported — they should agree.

7(b): checkpoint storage bytes per instrumented region, split into
memory (data+address words per offending store) and register (one word
per live-in checkpoint) contributions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.encore import EncoreConfig
from repro.experiments.harness import PipelineCache
from repro.experiments.reporting import Table, fmt_num, fmt_pct, suite_order_with_means
from repro.runtime import Interpreter


@dataclasses.dataclass
class Fig7Data:
    # benchmark -> metrics
    overheads: Dict[str, Dict[str, float]]
    storage: Dict[str, Dict[str, float]]


def run(
    names: Optional[Sequence[str]] = None, measure: bool = True
) -> Fig7Data:
    cache = PipelineCache()
    overheads: Dict[str, Dict[str, float]] = {}
    storage: Dict[str, Dict[str, float]] = {}

    static_results = cache.run_all(EncoreConfig(alias_mode="static"), names)
    for result in static_results:
        name = result.spec.name
        est_static = result.report.estimated_overhead()
        est_opt = _optimistic_bound(result)
        measured = est_static
        if measure:
            built = result.built
            run_result = Interpreter(
                result.report.module, externals=built.externals
            ).run(built.entry, built.args)
            measured = run_result.overhead
        overheads[name] = {
            "static": est_static,
            "optimistic": est_opt,
            "measured": measured,
        }
        inst = result.report.instrumentation
        storage[name] = {
            "memory": inst.mean_memory_bytes,
            "register": inst.mean_register_bytes,
            "total": inst.mean_region_bytes,
        }
    return Fig7Data(overheads, storage)


def _optimistic_bound(result) -> float:
    """Re-cost the *same* selected regions under optimistic aliasing.

    The paper's Optimistic Alias Analysis bar is an approximate lower
    bound for a future Encore with perfect disambiguation: identical
    region selection, but checkpoints forced only by genuine WARs.  A
    fresh pipeline would instead re-spend the savings on more coverage,
    so the bound is computed on the static run's selections.
    """
    from repro.analysis.alias import AliasAnalysis
    from repro.encore.idempotence import IdempotenceAnalyzer
    from repro.encore.regions import RegionBuilder
    from repro.encore.selection import RegionSelector

    report = result.report
    # Re-analyze against a pristine (uninstrumented) build of the same
    # workload: the builders are deterministic, so block labels match.
    module = result.spec.build().module
    alias = AliasAnalysis(module, mode="optimistic")
    analyzer = IdempotenceAnalyzer(
        module, alias=alias, profile=report.profile, pmin=report.config.pmin
    )
    builder = RegionBuilder(module, report.profile)
    selector = RegionSelector(
        module, analyzer, builder, report.profile, report.config.selection()
    )
    total = max(report.total_app_instructions, 1)
    bound = 0.0
    for region in report.selected_regions:
        clone = builder.make_region(
            region.func, region.blocks, region.header, region.level
        )
        bound += selector.estimated_overhead(clone, total)
    return bound


def render(data: Fig7Data) -> str:
    table_a = Table(
        "Figure 7a: runtime overhead (dynamic instructions)",
        ["Benchmark", "Static Alias", "Optimistic Alias", "Measured"],
    )
    for label, values, is_mean in suite_order_with_means(
        data.overheads, ("static", "optimistic", "measured")
    ):
        if is_mean:
            table_a.add_rule()
        table_a.add_row(
            label,
            fmt_pct(values["static"]),
            fmt_pct(values["optimistic"]),
            fmt_pct(values["measured"]),
        )
        if is_mean:
            table_a.add_rule()

    table_b = Table(
        "Figure 7b: checkpoint storage overhead (avg bytes / region)",
        ["Benchmark", "Memory", "Register", "Total"],
    )
    for label, values, is_mean in suite_order_with_means(
        data.storage, ("memory", "register", "total")
    ):
        if is_mean:
            table_b.add_rule()
        table_b.add_row(
            label,
            fmt_num(values["memory"]),
            fmt_num(values["register"]),
            fmt_num(values["total"]),
        )
        if is_mean:
            table_b.add_rule()
    return table_a.render() + "\n\n" + table_b.render()


def to_csv(data: Fig7Data) -> str:
    from repro.experiments.reporting import rows_to_csv

    rows = []
    for name in data.overheads:
        o = data.overheads[name]
        s = data.storage[name]
        rows.append(
            (name, o["static"], o["optimistic"], o["measured"],
             s["memory"], s["register"], s["total"])
        )
    return rows_to_csv(
        ["benchmark", "overhead_static", "overhead_optimistic",
         "overhead_measured", "storage_memory_bytes",
         "storage_register_bytes", "storage_total_bytes"],
        rows,
    )


def main(names: Optional[Sequence[str]] = None) -> str:
    output = render(run(names))
    print(output)
    return output
