"""CLI entry point: ``python -m repro.experiments <experiment> [names...]``.

Examples::

    python -m repro.experiments all
    python -m repro.experiments fig8
    python -m repro.experiments fig6 172.mgrid cjpeg
"""

from __future__ import annotations

import sys

from repro.experiments import EXPERIMENTS


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(sorted(EXPERIMENTS)) + ", all"
        print(f"usage: python -m repro.experiments <{names}> "
              f"[--csv DIR] [benchmark...]")
        return 0
    csv_dir = None
    if "--csv" in argv:
        index = argv.index("--csv")
        try:
            csv_dir = argv[index + 1]
        except IndexError:
            print("--csv requires a directory argument")
            return 2
        del argv[index:index + 2]
    which = argv[0]
    benchmarks = argv[1:] or None
    keys = (
        ["fig1", "table1", "fig5", "fig6", "fig7", "fig8"]
        if which == "all"
        else [which]
    )
    for key in keys:
        if key not in EXPERIMENTS:
            print(f"unknown experiment {key!r}; choices: {sorted(EXPERIMENTS)}")
            return 2
    for key in keys:
        module = EXPERIMENTS[key]
        if csv_dir is None:
            module.main(benchmarks)
            print()
            continue
        import os

        os.makedirs(csv_dir, exist_ok=True)
        data = module.run(benchmarks)
        print(module.render(data))
        print()
        path = os.path.join(csv_dir, f"{key}.csv")
        with open(path, "w") as handle:
            handle.write(module.to_csv(data))
        print(f"[wrote {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
