"""Experiment harnesses: one module per paper table/figure.

Run them all with ``python -m repro.experiments all`` or individually
(``python -m repro.experiments fig8``).  Each module exposes ``run()``
returning structured data and ``render()`` producing the paper-shaped
text table.
"""

from repro.experiments import (
    fig1_traces,
    fig5_idempotence,
    fig6_breakdown,
    fig7_overheads,
    fig8_coverage,
    table1,
)
from repro.experiments.harness import (
    PipelineCache,
    campaign_jobs,
    default_config,
    run_sfi,
)

EXPERIMENTS = {
    "fig1": fig1_traces,
    "table1": table1,
    "fig5": fig5_idempotence,
    "fig6": fig6_breakdown,
    "fig7": fig7_overheads,
    "fig8": fig8_coverage,
}

__all__ = [
    "EXPERIMENTS",
    "PipelineCache",
    "campaign_jobs",
    "default_config",
    "run_sfi",
    "fig1_traces",
    "fig5_idempotence",
    "fig6_breakdown",
    "fig7_overheads",
    "fig8_coverage",
    "table1",
]
