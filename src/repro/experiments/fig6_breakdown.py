"""Figure 6: breakdown of dynamic execution time.

Per benchmark, the fraction of application dynamic instructions spent
in (a) inherently idempotent selected regions, (b) non-idempotent
regions instrumented with Encore checkpointing, and (c) regions too
costly to protect ("w/o Encore checkpointing" — lost coverage).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.encore import EncoreConfig
from repro.experiments.harness import PipelineCache
from repro.experiments.reporting import Table, fmt_pct, suite_order_with_means

METRICS = ("idempotent", "checkpointed", "unprotected")


@dataclasses.dataclass
class Fig6Data:
    # benchmark -> {"idempotent": f, "checkpointed": f, "unprotected": f}
    breakdown: Dict[str, Dict[str, float]]


def run(names: Optional[Sequence[str]] = None) -> Fig6Data:
    cache = PipelineCache()
    breakdown: Dict[str, Dict[str, float]] = {}
    for result in cache.run_all(EncoreConfig(), names):
        breakdown[result.spec.name] = result.report.dynamic_breakdown()
    return Fig6Data(breakdown)


def render(data: Fig6Data) -> str:
    table = Table(
        "Figure 6: dynamic execution breakdown "
        "(Idempotent / w/ Encore Checkpointing / w/o Encore Checkpointing)",
        ["Benchmark", "Idempotent", "w/ Checkpointing", "w/o Checkpointing"],
    )
    for label, values, is_mean in suite_order_with_means(data.breakdown, METRICS):
        if is_mean:
            table.add_rule()
        table.add_row(
            label,
            fmt_pct(values["idempotent"]),
            fmt_pct(values["checkpointed"]),
            fmt_pct(values["unprotected"]),
        )
        if is_mean:
            table.add_rule()
    return table.render()


def to_csv(data: Fig6Data) -> str:
    from repro.experiments.reporting import rows_to_csv

    rows = [
        (name, row["idempotent"], row["checkpointed"], row["unprotected"])
        for name, row in data.breakdown.items()
    ]
    return rows_to_csv(
        ["benchmark", "idempotent", "w_checkpointing", "wo_checkpointing"], rows
    )


def main(names: Optional[Sequence[str]] = None) -> str:
    output = render(run(names))
    print(output)
    return output
