"""Figure 5: inherent region idempotence as a function of Pmin.

For each benchmark and each Pmin in {∅, 0.0, 0.1, 0.25}, the fraction
of base candidate regions that are inherently idempotent,
non-idempotent, and unknown.  Expected shape (paper Section 5.1): the
idempotent fraction grows with pruning, most of the benefit arrives at
Pmin = 0.0, and the unpruned overall mean sits near 49% vs ~75% pruned.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.encore import EncoreConfig, RegionStatus
from repro.experiments.harness import PipelineCache
from repro.experiments.reporting import Table, fmt_pct, suite_order_with_means

PMIN_VALUES: Tuple[Optional[float], ...] = (None, 0.0, 0.1, 0.25)


@dataclasses.dataclass
class Fig5Data:
    # benchmark -> pmin -> {"idempotent": f, "non_idempotent": f, "unknown": f}
    fractions: Dict[str, Dict[Optional[float], Dict[str, float]]]
    pmin_values: Sequence[Optional[float]]


def run(
    names: Optional[Sequence[str]] = None,
    pmin_values: Sequence[Optional[float]] = PMIN_VALUES,
) -> Fig5Data:
    cache = PipelineCache()
    fractions: Dict[str, Dict[Optional[float], Dict[str, float]]] = {}
    for pmin in pmin_values:
        config = EncoreConfig(pmin=pmin)
        for result in cache.run_all(config, names):
            fr = result.report.region_status_fractions()
            fractions.setdefault(result.spec.name, {})[pmin] = {
                "idempotent": fr[RegionStatus.IDEMPOTENT],
                "non_idempotent": fr[RegionStatus.NON_IDEMPOTENT],
                "unknown": fr[RegionStatus.UNKNOWN],
            }
    return Fig5Data(fractions, pmin_values)


def _label(pmin: Optional[float]) -> str:
    return "none" if pmin is None else f"{pmin:g}"


def render(data: Fig5Data) -> str:
    columns = ["Benchmark"]
    for pmin in data.pmin_values:
        columns.append(f"Idem(P={_label(pmin)})")
    columns.append("NonIdem(P=0.0)")
    columns.append("Unknown(P=0.0)")

    per_benchmark = {}
    metrics = [f"idem_{_label(p)}" for p in data.pmin_values] + ["non", "unk"]
    for name, by_pmin in data.fractions.items():
        row = {}
        for pmin in data.pmin_values:
            row[f"idem_{_label(pmin)}"] = by_pmin[pmin]["idempotent"]
        row["non"] = by_pmin[0.0]["non_idempotent"]
        row["unk"] = by_pmin[0.0]["unknown"]
        per_benchmark[name] = row

    table = Table(
        "Figure 5: inherent region idempotence vs Pmin "
        "(columns: idempotent fraction at each Pmin; breakdown at Pmin=0.0)",
        columns,
    )
    for label, values, is_mean in suite_order_with_means(per_benchmark, metrics):
        if is_mean:
            table.add_rule()
        cells = [label]
        for pmin in data.pmin_values:
            cells.append(fmt_pct(values[f"idem_{_label(pmin)}"]))
        cells.append(fmt_pct(values["non"]))
        cells.append(fmt_pct(values["unk"]))
        table.add_row(*cells)
        if is_mean:
            table.add_rule()
    return table.render()


def to_csv(data: Fig5Data) -> str:
    from repro.experiments.reporting import rows_to_csv

    rows = []
    for name, by_pmin in data.fractions.items():
        for pmin, fr in by_pmin.items():
            rows.append(
                (name, _label(pmin), fr["idempotent"],
                 fr["non_idempotent"], fr["unknown"])
            )
    return rows_to_csv(
        ["benchmark", "pmin", "idempotent", "non_idempotent", "unknown"], rows
    )


def main(names: Optional[Sequence[str]] = None) -> str:
    output = render(run(names))
    print(output)
    return output
