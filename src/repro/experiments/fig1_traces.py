"""Figure 1: inherent idempotence of dynamic instruction traces vs size.

For every workload we capture the dynamic memory-access trace, sample
windows of each size, and measure the fraction that contain no dynamic
WAR ("Fully Idempotent").  The "Idempotence Target" series — the
headroom Encore aims to expose through pruning and selective
checkpointing — is the fraction of windows with at most a couple of
offending addresses (the paper's "nearly idempotent" observation).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments.reporting import Table, fmt_pct
from repro.runtime.traces import capture_trace, trace_idempotence_profile
from repro.workloads import all_workloads

WINDOW_SIZES = (10, 25, 50, 100, 200, 500, 1000)


@dataclasses.dataclass
class Fig1Data:
    window_sizes: Sequence[int]
    fully: Dict[int, float]
    target: Dict[int, float]
    per_benchmark: Dict[str, Dict[int, float]]


def run(
    names: Optional[Sequence[str]] = None,
    window_sizes: Sequence[int] = WINDOW_SIZES,
    samples_per_size: int = 120,
) -> Fig1Data:
    specs = all_workloads()
    if names is not None:
        wanted = set(names)
        specs = [s for s in specs if s.name in wanted]
    fully_acc = {w: [] for w in window_sizes}
    target_acc = {w: [] for w in window_sizes}
    per_benchmark: Dict[str, Dict[int, float]] = {}
    for spec in specs:
        built = spec.build()
        trace = capture_trace(
            built.module, built.entry, built.args, externals=built.externals
        )
        stats = trace_idempotence_profile(
            trace, window_sizes=window_sizes, samples_per_size=samples_per_size
        )
        per_benchmark[spec.name] = {s.window: s.fully_idempotent for s in stats}
        for s in stats:
            fully_acc[s.window].append(s.fully_idempotent)
            target_acc[s.window].append(s.nearly_idempotent)
    fully = {w: sum(v) / len(v) for w, v in fully_acc.items() if v}
    target = {w: sum(v) / len(v) for w, v in target_acc.items() if v}
    return Fig1Data(window_sizes, fully, target, per_benchmark)


def render(data: Fig1Data) -> str:
    table = Table(
        "Figure 1: % of dynamic traces that are idempotent, by trace size",
        ["Trace size", "Fully Idempotent", "Idempotence Target"],
    )
    for w in data.window_sizes:
        table.add_row(w, fmt_pct(data.fully[w]), fmt_pct(data.target[w]))
    return table.render()


def to_csv(data: Fig1Data) -> str:
    from repro.experiments.reporting import rows_to_csv

    rows = [
        (w, data.fully[w], data.target[w]) for w in data.window_sizes
    ]
    return rows_to_csv(
        ["trace_size", "fully_idempotent", "idempotence_target"], rows
    )


def main(names: Optional[Sequence[str]] = None) -> str:
    output = render(run(names))
    print(output)
    return output
