"""Value-level entities of the repro IR: registers, constants, memory.

Instructions operate on *operands*, which are either virtual registers or
constants.  Memory is modelled as a set of named, word-addressed
:class:`MemoryObject` instances; a :class:`MemRef` names one word within an
object, either directly (``base`` is a :class:`MemoryObject`) or through a
pointer register (``base`` is a :class:`VirtualRegister` of pointer type),
in which case the statically-known base object is unknown and alias
analysis must be conservative.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.ir.types import Type


_TYPE_BY_VALUE = {t.value: t for t in Type}


class VirtualRegister(tuple):
    """A virtual register.  The IR is not SSA: registers may be reassigned.

    Register objects key every frame's register file, so their hash and
    equality sit on the interpreter's hottest path.  Subclassing ``tuple``
    over ``(name, type.value)`` — both built-in types with C-level,
    cached hashes — keeps every register-file dict probe out of Python
    entirely; a frozen dataclass would re-enter a Python ``__hash__``
    (and, on collisions, ``__eq__``) per probe.  Identity semantics are
    unchanged: two registers are equal iff name and type agree.
    """

    __slots__ = ()

    def __new__(cls, name: str, type: Type = Type.I64) -> "VirtualRegister":
        value = type.value if isinstance(type, Type) else Type(type).value
        return tuple.__new__(cls, (name, value))

    @property
    def name(self) -> str:
        return self[0]

    @property
    def type(self) -> Type:
        return _TYPE_BY_VALUE[self[1]]

    def __getnewargs__(self) -> tuple:
        return (self[0], _TYPE_BY_VALUE[self[1]])

    def __repr__(self) -> str:
        return (
            f"VirtualRegister(name={self[0]!r}, "
            f"type={_TYPE_BY_VALUE[self[1]]!r})"
        )

    def __str__(self) -> str:
        return f"%{self[0]}"


@dataclasses.dataclass(frozen=True)
class Constant:
    """An immediate operand."""

    value: Union[int, float]
    type: Type = Type.I64

    def __str__(self) -> str:
        return str(self.value)


Operand = Union[VirtualRegister, Constant]


class MemoryObject:
    """A named, statically-declared region of word-addressed memory.

    ``kind`` distinguishes globals (module lifetime), stack objects
    (function-frame lifetime) and heap objects (created by ``Alloc``
    instructions at run time).  ``size`` is in words.
    """

    __slots__ = ("name", "size", "kind", "init")

    def __init__(
        self,
        name: str,
        size: int,
        kind: str = "global",
        init: Optional[list] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"memory object {name!r} must have positive size")
        if kind not in ("global", "stack", "heap"):
            raise ValueError(f"unknown memory object kind {kind!r}")
        if init is not None and len(init) > size:
            raise ValueError(f"initializer for {name!r} longer than object")
        self.name = name
        self.size = size
        self.kind = kind
        self.init = list(init) if init is not None else None

    def __repr__(self) -> str:
        return f"MemoryObject({self.name!r}, size={self.size}, kind={self.kind!r})"

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclasses.dataclass(frozen=True)
class MemRef:
    """A reference to one word of memory: ``base[index]``.

    ``base`` is a :class:`MemoryObject` for direct references, or a
    pointer-typed :class:`VirtualRegister` for indirect references.
    ``index`` is a word offset (constant or register).
    """

    base: Union[MemoryObject, VirtualRegister]
    index: Operand = Constant(0)

    @property
    def is_direct(self) -> bool:
        """True when the accessed object is statically known."""
        return isinstance(self.base, MemoryObject)

    @property
    def has_constant_index(self) -> bool:
        return isinstance(self.index, Constant)

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


def operand_registers(operand: Operand) -> tuple:
    """Registers read by evaluating ``operand`` (zero or one of them)."""
    if isinstance(operand, VirtualRegister):
        return (operand,)
    return ()


def memref_registers(ref: MemRef) -> tuple:
    """Registers read by evaluating the address of ``ref``."""
    regs = []
    if isinstance(ref.base, VirtualRegister):
        regs.append(ref.base)
    if isinstance(ref.index, VirtualRegister):
        regs.append(ref.index)
    return tuple(regs)
