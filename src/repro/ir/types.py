"""Scalar types for the repro IR.

The IR is deliberately small: 64-bit signed integers, IEEE doubles, and
pointers (object, word-offset pairs).  ``VOID`` is only used as the result
type of calls to procedures that return nothing.
"""

from __future__ import annotations

import enum

WORD_BYTES = 4
"""Architectural word size in bytes (ARM926-class 32-bit target).

Checkpoint storage accounting (paper Figure 7b) is denominated in these
words: a register checkpoint stores one word, a memory checkpoint stores
two (data plus address).
"""

INT_BITS = 64
INT_MASK = (1 << INT_BITS) - 1
INT_SIGN = 1 << (INT_BITS - 1)


class Type(enum.Enum):
    """The scalar value types a register or constant can carry."""

    I64 = "i64"
    F64 = "f64"
    PTR = "ptr"
    VOID = "void"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def wrap_int(value: int) -> int:
    """Wrap ``value`` into the signed 64-bit range the interpreter models."""
    value &= INT_MASK
    if value & INT_SIGN:
        value -= 1 << INT_BITS
    return value
