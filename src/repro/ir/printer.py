"""Textual rendering of IR modules and functions.

The format round-trips through :mod:`repro.ir.parser`: globals carry
their initializers, functions list their stack objects, and every
instruction prints in the grammar the parser accepts.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import MemoryObject


def _object_decl(keyword: str, obj: MemoryObject) -> str:
    decl = f"{keyword} @{obj.name}[{obj.size}]"
    if obj.init is not None:
        init = ", ".join(repr(v) for v in obj.init)
        decl += f" = [{init}]"
    return decl


def function_to_text(func: Function) -> str:
    params = ", ".join(str(p) for p in func.params)
    lines = [f"func {func.name}({params}) {{"]
    for obj in func.stack_objects.values():
        lines.append(f"  {_object_decl('stack', obj)}")
    # The entry block prints first: the parser (and the reader) take the
    # first block as the entry, and instrumentation can re-point it.
    ordered = [func.entry] + [b for b in func if b.label != func.entry_label]
    for block in ordered:
        lines.append(f"{block.label}:")
        lines.extend(f"  {inst}" for inst in block)
    lines.append("}")
    return "\n".join(lines)


def module_to_text(module: Module) -> str:
    lines = [f"module {module.name}"]
    for name in sorted(module.externals):
        lines.append(f"extern {name}")
    for obj in module.globals.values():
        lines.append(_object_decl("global", obj))
    for func in module:
        lines.append("")
        lines.append(function_to_text(func))
    return "\n".join(lines)
