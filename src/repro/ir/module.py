"""Modules: top-level containers of functions and global memory objects."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

from repro.ir.function import Function
from repro.ir.values import MemoryObject, VirtualRegister


class Module:
    """A compilation unit: functions plus global memory objects.

    ``externals`` names routines the module may call but that are opaque
    to analysis (system/library calls in the paper's terminology); regions
    containing calls to them are classified *unknown*.
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, MemoryObject] = {}
        self.externals: set = set()

    # -- construction -------------------------------------------------

    def add_function(
        self, name: str, params: Sequence[VirtualRegister] = ()
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"duplicate function {name!r}")
        func = Function(name, params)
        self.functions[name] = func
        return func

    def add_global(self, name: str, size: int, init=None) -> MemoryObject:
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r}")
        obj = MemoryObject(name, size, kind="global", init=init)
        self.globals[name] = obj
        return obj

    def declare_external(self, name: str) -> None:
        self.externals.add(name)

    # -- lookup -------------------------------------------------------

    def function(self, name: str) -> Function:
        return self.functions[name]

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def is_external(self, callee: str) -> bool:
        return callee not in self.functions

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"<Module {self.name} ({len(self.functions)} functions, "
            f"{len(self.globals)} globals)>"
        )
