"""Structural verification of IR modules.

The verifier catches authoring mistakes early: missing terminators,
branches to unknown labels, use of undefined registers (checked
flow-insensitively: a register must be defined somewhere in the function
or be a parameter), stores through non-pointer registers, and calls to
undeclared targets.  Encore's own recovery blocks are intentionally
unreachable from normal control flow, so reachability is *not* an error.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import Type
from repro.ir.values import MemoryObject, VirtualRegister


class VerificationError(Exception):
    """Raised when a module fails structural verification."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = errors


def verify_function(func: Function, module: Module) -> List[str]:
    """Return a list of verification errors for ``func`` (empty if clean)."""
    errors: List[str] = []
    if not func.blocks:
        return [f"{func.name}: function has no blocks"]

    defined = set(func.params)
    for block in func:
        for inst in block:
            defined.update(inst.defs())

    for block in func:
        term = block.terminator
        if term is None:
            errors.append(f"{func.name}/{block.label}: missing terminator")
        for i, inst in enumerate(block.instructions):
            if inst.is_terminator and inst is not block.instructions[-1]:
                errors.append(
                    f"{func.name}/{block.label}: terminator {inst} not last"
                )
            for succ in inst.successors():
                if succ not in func.blocks:
                    errors.append(
                        f"{func.name}/{block.label}: branch to unknown label "
                        f"{succ!r}"
                    )
            for reg in inst.uses():
                if reg not in defined:
                    errors.append(
                        f"{func.name}/{block.label}: use of undefined register "
                        f"{reg} in {inst}"
                    )
            for ref in list(inst.loads()) + list(inst.stores()):
                base = ref.base
                if isinstance(base, VirtualRegister):
                    if base.type is not Type.PTR:
                        errors.append(
                            f"{func.name}/{block.label}: indirect access through "
                            f"non-pointer register {base} in {inst}"
                        )
                elif isinstance(base, MemoryObject):
                    known = (
                        base.name in module.globals
                        and module.globals[base.name] is base
                    ) or (
                        base.name in func.stack_objects
                        and func.stack_objects[base.name] is base
                    )
                    if not known:
                        errors.append(
                            f"{func.name}/{block.label}: access to undeclared "
                            f"memory object {base} in {inst}"
                        )
            if inst.opcode == "call":
                callee = inst.callee
                if callee not in module.functions and callee not in module.externals:
                    errors.append(
                        f"{func.name}/{block.label}: call to undeclared target "
                        f"{callee!r}"
                    )
            if inst.opcode == "spawn":
                # Externals cannot be scheduled: a spawn target must be
                # a function of this module.
                if inst.callee not in module.functions:
                    errors.append(
                        f"{func.name}/{block.label}: spawn of non-module "
                        f"function {inst.callee!r}"
                    )
    return errors


def verify_module(module: Module) -> None:
    """Verify every function in ``module``; raise :class:`VerificationError`."""
    errors: List[str] = []
    for func in module:
        errors.extend(verify_function(func, module))
    if errors:
        raise VerificationError(errors)
