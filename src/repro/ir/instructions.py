"""Instruction set of the repro IR.

Ordinary instructions (arithmetic, memory, control) model the application
program.  Instrumentation instructions (``SetRecoveryPtr``,
``CheckpointReg``, ``CheckpointMem``, ``RestoreCheckpoints``) are inserted
by the Encore passes and are never written by workloads directly; they
carry a ``dynamic_cost`` that charges the paper's per-instruction overhead
model (a memory checkpoint costs two stores — data plus address — while a
register checkpoint and the recovery-pointer update cost one store each).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ir.values import (
    Constant,
    MemRef,
    Operand,
    VirtualRegister,
    memref_registers,
    operand_registers,
)

INT_BINARY_OPS = frozenset(
    ["add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "lshr", "ashr",
     "min", "max"]
)
FLOAT_BINARY_OPS = frozenset(["fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"])
BINARY_OPS = INT_BINARY_OPS | FLOAT_BINARY_OPS

COMPARE_PREDICATES = frozenset(
    ["eq", "ne", "slt", "sle", "sgt", "sge", "feq", "fne", "flt", "fle", "fgt", "fge"]
)

UNARY_OPS = frozenset(["neg", "not", "fneg", "sitofp", "fptosi", "fsqrt", "fabs"])


class Instruction:
    """Base class for all IR instructions."""

    opcode: str = "?"
    is_terminator: bool = False
    is_instrumentation: bool = False
    dynamic_cost: int = 1

    def uses(self) -> Tuple[VirtualRegister, ...]:
        """Registers read by this instruction."""
        return ()

    def defs(self) -> Tuple[VirtualRegister, ...]:
        """Registers written by this instruction."""
        return ()

    def loads(self) -> Tuple[MemRef, ...]:
        """Memory references read by this instruction."""
        return ()

    def stores(self) -> Tuple[MemRef, ...]:
        """Memory references written by this instruction."""
        return ()

    def successors(self) -> Tuple[str, ...]:
        """Labels of blocks this (terminator) instruction can branch to."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self}>"


class BinOp(Instruction):
    """``dest = op lhs, rhs`` for an integer or float binary operation."""

    opcode = "binop"

    def __init__(self, op: str, dest: VirtualRegister, lhs: Operand, rhs: Operand) -> None:
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.dest = dest
        self.lhs = lhs
        self.rhs = rhs

    def uses(self):
        return operand_registers(self.lhs) + operand_registers(self.rhs)

    def defs(self):
        return (self.dest,)

    def __str__(self) -> str:
        return f"{self.dest} = {self.op} {self.lhs}, {self.rhs}"


class UnaryOp(Instruction):
    """``dest = op src``."""

    opcode = "unop"

    def __init__(self, op: str, dest: VirtualRegister, src: Operand) -> None:
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self.dest = dest
        self.src = src

    def uses(self):
        return operand_registers(self.src)

    def defs(self):
        return (self.dest,)

    def __str__(self) -> str:
        return f"{self.dest} = {self.op} {self.src}"


class Compare(Instruction):
    """``dest = cmp.pred lhs, rhs`` producing 0 or 1."""

    opcode = "cmp"

    def __init__(self, pred: str, dest: VirtualRegister, lhs: Operand, rhs: Operand) -> None:
        if pred not in COMPARE_PREDICATES:
            raise ValueError(f"unknown compare predicate {pred!r}")
        self.pred = pred
        self.dest = dest
        self.lhs = lhs
        self.rhs = rhs

    def uses(self):
        return operand_registers(self.lhs) + operand_registers(self.rhs)

    def defs(self):
        return (self.dest,)

    def __str__(self) -> str:
        return f"{self.dest} = cmp.{self.pred} {self.lhs}, {self.rhs}"


class Select(Instruction):
    """``dest = cond ? if_true : if_false``."""

    opcode = "select"

    def __init__(
        self,
        dest: VirtualRegister,
        cond: Operand,
        if_true: Operand,
        if_false: Operand,
    ) -> None:
        self.dest = dest
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    def uses(self):
        return (
            operand_registers(self.cond)
            + operand_registers(self.if_true)
            + operand_registers(self.if_false)
        )

    def defs(self):
        return (self.dest,)

    def __str__(self) -> str:
        return f"{self.dest} = select {self.cond}, {self.if_true}, {self.if_false}"


class Move(Instruction):
    """``dest = src`` register/constant copy."""

    opcode = "mov"

    def __init__(self, dest: VirtualRegister, src: Operand) -> None:
        self.dest = dest
        self.src = src

    def uses(self):
        return operand_registers(self.src)

    def defs(self):
        return (self.dest,)

    def __str__(self) -> str:
        return f"{self.dest} = mov {self.src}"


class AddrOf(Instruction):
    """``dest = &base[index]`` — materialize a pointer into a register."""

    opcode = "addrof"

    def __init__(self, dest: VirtualRegister, ref: MemRef) -> None:
        self.dest = dest
        self.ref = ref

    def uses(self):
        return memref_registers(self.ref)

    def defs(self):
        return (self.dest,)

    def __str__(self) -> str:
        return f"{self.dest} = addrof {self.ref}"


class Load(Instruction):
    """``dest = load ref``."""

    opcode = "load"

    def __init__(self, dest: VirtualRegister, ref: MemRef) -> None:
        self.dest = dest
        self.ref = ref

    def uses(self):
        return memref_registers(self.ref)

    def defs(self):
        return (self.dest,)

    def loads(self):
        return (self.ref,)

    def __str__(self) -> str:
        return f"{self.dest} = load {self.ref}"


class Store(Instruction):
    """``store ref, value``."""

    opcode = "store"

    def __init__(self, ref: MemRef, value: Operand) -> None:
        self.ref = ref
        self.value = value

    def uses(self):
        return memref_registers(self.ref) + operand_registers(self.value)

    def stores(self):
        return (self.ref,)

    def __str__(self) -> str:
        return f"store {self.ref}, {self.value}"


class Alloc(Instruction):
    """``dest = alloc size`` — create a fresh heap object at run time.

    Models ``malloc``: used by workloads that allocate once on their first
    invocation (the 175.vpr ``try_swap`` pattern from paper Figure 2c).
    """

    opcode = "alloc"

    def __init__(self, dest: VirtualRegister, size: Operand) -> None:
        self.dest = dest
        self.size = size

    def uses(self):
        return operand_registers(self.size)

    def defs(self):
        return (self.dest,)

    def __str__(self) -> str:
        return f"{self.dest} = alloc {self.size}"


class Branch(Instruction):
    """``br cond, if_true, if_false`` — conditional two-way branch."""

    opcode = "br"
    is_terminator = True

    def __init__(self, cond: Operand, if_true: str, if_false: str) -> None:
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    def uses(self):
        return operand_registers(self.cond)

    def successors(self):
        return (self.if_true, self.if_false)

    def __str__(self) -> str:
        return f"br {self.cond}, {self.if_true}, {self.if_false}"


class Jump(Instruction):
    """``jmp target`` — unconditional branch."""

    opcode = "jmp"
    is_terminator = True

    def __init__(self, target: str) -> None:
        self.target = target

    def successors(self):
        return (self.target,)

    def __str__(self) -> str:
        return f"jmp {self.target}"


class Call(Instruction):
    """``dest = call callee(args...)``.

    ``callee`` names either a function in the enclosing module or an
    opaque external routine.  External callees cannot be analyzed for
    idempotence and poison the enclosing region as *unknown* (the Unknown
    segment of paper Figure 5).
    """

    opcode = "call"

    def __init__(
        self,
        dest: Optional[VirtualRegister],
        callee: str,
        args: Sequence[Operand] = (),
    ) -> None:
        self.dest = dest
        self.callee = callee
        self.args = list(args)

    def uses(self):
        regs: List[VirtualRegister] = []
        for arg in self.args:
            regs.extend(operand_registers(arg))
        return tuple(regs)

    def defs(self):
        return (self.dest,) if self.dest is not None else ()

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        if self.dest is not None:
            return f"{self.dest} = call {self.callee}({args})"
        return f"call {self.callee}({args})"


class Spawn(Instruction):
    """``dest = spawn callee(args...)`` — start a cooperative thread.

    The callee must be a function of the enclosing module (spawning an
    opaque external is a verification error: there is nothing to
    schedule).  ``dest`` receives the new thread's id, the token a
    later ``join`` consumes.  Scheduling is deterministic cooperative
    round-robin (:mod:`repro.runtime.scheduler`); like ``call``, the
    callee's memory effects make the enclosing region unanalyzable for
    idempotence, and unlike ``call`` they can interleave with the
    spawner, so regions containing a ``spawn`` are never protected.
    """

    opcode = "spawn"

    def __init__(
        self,
        dest: VirtualRegister,
        callee: str,
        args: Sequence[Operand] = (),
    ) -> None:
        self.dest = dest
        self.callee = callee
        self.args = list(args)

    def uses(self):
        regs: List[VirtualRegister] = []
        for arg in self.args:
            regs.extend(operand_registers(arg))
        return tuple(regs)

    def defs(self):
        return (self.dest,)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.dest} = spawn {self.callee}({args})"


class Join(Instruction):
    """``dest = join thread`` — wait for a spawned thread, take its result.

    Blocks the issuing thread until ``thread`` (a thread id produced by
    ``spawn``) finishes, then writes that thread's return value to
    ``dest``.  Joining an id that never came from a live ``spawn``
    traps — a wild join is a visible symptom, not undefined behaviour.
    """

    opcode = "join"

    def __init__(self, dest: VirtualRegister, thread: Operand) -> None:
        self.dest = dest
        self.thread = thread

    def uses(self):
        return operand_registers(self.thread)

    def defs(self):
        return (self.dest,)

    def __str__(self) -> str:
        return f"{self.dest} = join {self.thread}"


class Ret(Instruction):
    """``ret [value]``."""

    opcode = "ret"
    is_terminator = True

    def __init__(self, value: Optional[Operand] = None) -> None:
        self.value = value

    def uses(self):
        if self.value is None:
            return ()
        return operand_registers(self.value)

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


# ---------------------------------------------------------------------------
# Encore instrumentation instructions (paper Section 3.2)
# ---------------------------------------------------------------------------


class SetRecoveryPtr(Instruction):
    """Region-header hook: publish the recovery block for region ``region_id``.

    The paper instruments each region header with "a simple store that
    updates a dedicated memory location with the address of the
    corresponding recovery block"; cost is one store.
    """

    opcode = "set_recovery_ptr"
    is_instrumentation = True
    dynamic_cost = 1

    def __init__(self, region_id: int, recovery_label: str) -> None:
        self.region_id = region_id
        self.recovery_label = recovery_label

    def __str__(self) -> str:
        return f"set_recovery_ptr r{self.region_id}, {self.recovery_label}"


class ClearRecoveryPtr(Instruction):
    """Region-exit hook: invalidate region ``region_id``'s recovery pointer.

    Inserted on every edge leaving a protected region so a detection
    that fires after control has left the region cannot roll back into
    stale recovery state — the fault has *escaped* and is unrecoverable
    by Encore (the latency/region-length tradeoff of the alpha model).
    Clearing is conditional on the region id, so a block reachable from
    several regions only clears the pointer its own exit published;
    cost is one store, like publishing the pointer.
    """

    opcode = "clear_recovery_ptr"
    is_instrumentation = True
    dynamic_cost = 1

    def __init__(self, region_id: int) -> None:
        self.region_id = region_id

    def __str__(self) -> str:
        return f"clear_recovery_ptr r{self.region_id}"


class CheckpointReg(Instruction):
    """Save a live-in register at region entry (one store)."""

    opcode = "ckpt_reg"
    is_instrumentation = True
    dynamic_cost = 1

    def __init__(self, region_id: int, reg: VirtualRegister) -> None:
        self.region_id = region_id
        self.reg = reg

    def uses(self):
        return (self.reg,)

    def __str__(self) -> str:
        return f"ckpt_reg r{self.region_id}, {self.reg}"


class CheckpointMem(Instruction):
    """Save one memory word (data plus address) just before an offending store.

    Costs two dynamic stores, matching the paper's memory-checkpoint model
    where "both data and address must be stored to enable proper recovery".
    """

    opcode = "ckpt_mem"
    is_instrumentation = True
    dynamic_cost = 2

    def __init__(self, region_id: int, ref: MemRef) -> None:
        self.region_id = region_id
        self.ref = ref

    def uses(self):
        return memref_registers(self.ref)

    def loads(self):
        return (self.ref,)

    def __str__(self) -> str:
        return f"ckpt_mem r{self.region_id}, {self.ref}"


class RestoreCheckpoints(Instruction):
    """Recovery-block body: restore all state checkpointed since region entry.

    Only executed when the detector redirects control into the recovery
    block, so its cost does not contribute to fault-free runtime overhead.
    """

    opcode = "restore"
    is_instrumentation = True
    dynamic_cost = 1

    def __init__(self, region_id: int) -> None:
        self.region_id = region_id

    def __str__(self) -> str:
        return f"restore r{self.region_id}"
