"""Functions: named CFGs of basic blocks with parameters and stack objects."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.values import MemoryObject, VirtualRegister


class Function:
    """A function: an entry block, a dict of blocks, and frame-local state.

    ``params`` are the virtual registers bound to call arguments.
    ``stack_objects`` are frame-lifetime memory objects (fresh storage per
    activation).  Blocks are kept in insertion order; the first block added
    is the entry block.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[VirtualRegister] = (),
    ) -> None:
        self.name = name
        self.params: List[VirtualRegister] = list(params)
        self.blocks: Dict[str, BasicBlock] = {}
        self.stack_objects: Dict[str, MemoryObject] = {}
        self._entry_label: Optional[str] = None

    # -- construction -------------------------------------------------

    def add_block(self, label: str) -> BasicBlock:
        if label in self.blocks:
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label)
        self.blocks[label] = block
        if self._entry_label is None:
            self._entry_label = label
        return block

    def add_stack_object(self, name: str, size: int, init=None) -> MemoryObject:
        if name in self.stack_objects:
            raise ValueError(f"duplicate stack object {name!r} in {self.name}")
        obj = MemoryObject(name, size, kind="stack", init=init)
        self.stack_objects[name] = obj
        return obj

    def set_entry(self, label: str) -> None:
        if label not in self.blocks:
            raise KeyError(label)
        self._entry_label = label

    # -- CFG accessors ------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if self._entry_label is None:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[self._entry_label]

    @property
    def entry_label(self) -> str:
        if self._entry_label is None:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self._entry_label

    def successors(self, label: str) -> Tuple[str, ...]:
        return self.blocks[label].successor_labels()

    def predecessor_map(self) -> Dict[str, List[str]]:
        """Label -> list of predecessor labels (deterministic order)."""
        preds: Dict[str, List[str]] = {label: [] for label in self.blocks}
        for label, block in self.blocks.items():
            for succ in block.successor_labels():
                if succ in preds:
                    preds[succ].append(label)
        return preds

    def reachable_labels(self) -> Set[str]:
        """Labels reachable from the entry block via terminator edges."""
        seen: Set[str] = set()
        stack = [self.entry_label]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(s for s in self.successors(label) if s not in seen)
        return seen

    def exit_labels(self) -> List[str]:
        """Blocks terminated by a return."""
        return [
            label
            for label, block in self.blocks.items()
            if block.terminator is not None and block.terminator.opcode == "ret"
        ]

    # -- iteration ----------------------------------------------------

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"
