"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.ir.instructions import Instruction


class BasicBlock:
    """A labelled sequence of instructions with at most one terminator.

    Blocks are owned by a :class:`~repro.ir.function.Function`; successor
    and predecessor relationships are derived from the terminator labels
    by the function's CFG accessors rather than stored here.
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self.instructions: List[Instruction] = []

    # -- construction -------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(
                f"cannot append to terminated block {self.label!r} ({inst})"
            )
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        """Insert ``inst`` before position ``index`` (used by instrumentation)."""
        self.instructions.insert(index, inst)
        return inst

    # -- inspection ---------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successor_labels(self) -> tuple:
        term = self.terminator
        return term.successors() if term is not None else ()

    def body(self) -> Iterator[Instruction]:
        """All instructions except the terminator."""
        for inst in self.instructions:
            if not inst.is_terminator:
                yield inst

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.instructions)} insts)>"

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {inst}" for inst in self.instructions)
        return "\n".join(lines)
