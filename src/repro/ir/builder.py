"""IRBuilder: the convenience API used to author IR programs.

The builder keeps an insertion point (a basic block) and emits
instructions into it, generating fresh virtual-register names for
results.  Python ints/floats passed as operands are promoted to
:class:`Constant`; ``(object, index)`` pairs are promoted to
:class:`MemRef`.

Typical usage::

    module = Module("demo")
    func = module.add_function("main")
    b = IRBuilder(func)
    b.block("entry")
    total = b.mov(0)
    ...
    b.ret(total)
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Union

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    AddrOf,
    Alloc,
    BinOp,
    Branch,
    Call,
    Compare,
    Join,
    Jump,
    Load,
    Move,
    Ret,
    Select,
    Spawn,
    Store,
    UnaryOp,
)
from repro.ir.types import Type
from repro.ir.values import Constant, MemoryObject, MemRef, Operand, VirtualRegister

OperandLike = Union[Operand, int, float]
MemRefLike = Union[MemRef, MemoryObject, tuple]


class IRBuilder:
    """Stateful helper that emits instructions into a function's blocks."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self._insert_block: Optional[BasicBlock] = None
        self._name_counter = itertools.count()

    # -- operand coercion ----------------------------------------------

    def _coerce(self, value: OperandLike) -> Operand:
        if isinstance(value, (VirtualRegister, Constant)):
            return value
        if isinstance(value, bool):
            return Constant(int(value))
        if isinstance(value, int):
            return Constant(value)
        if isinstance(value, float):
            return Constant(value, Type.F64)
        raise TypeError(f"cannot use {value!r} as an operand")

    def _coerce_ref(self, ref: MemRefLike, index: OperandLike = 0) -> MemRef:
        if isinstance(ref, MemRef):
            return ref
        # VirtualRegister subclasses tuple, so the register check must
        # come before the (base, index) pair unpacking.
        if isinstance(ref, (MemoryObject, VirtualRegister)):
            return MemRef(ref, self._coerce(index))
        if isinstance(ref, tuple):
            base, index = ref
            return self._coerce_ref(base, index)
        raise TypeError(f"cannot use {ref!r} as a memory reference")

    def fresh(self, prefix: str = "t", type: Type = Type.I64) -> VirtualRegister:
        """Return a fresh virtual register with a unique name."""
        return VirtualRegister(f"{prefix}{next(self._name_counter)}", type)

    # -- insertion point -----------------------------------------------

    def block(self, label: str) -> BasicBlock:
        """Create block ``label`` and position the builder at its end."""
        block = self.func.add_block(label)
        self._insert_block = block
        return block

    def position_at(self, label: str) -> BasicBlock:
        """Move the insertion point to existing block ``label``."""
        self._insert_block = self.func.blocks[label]
        return self._insert_block

    @property
    def current_block(self) -> BasicBlock:
        if self._insert_block is None:
            raise ValueError("builder has no insertion point; call block() first")
        return self._insert_block

    def _emit(self, inst):
        self.current_block.append(inst)
        return inst

    # -- arithmetic ------------------------------------------------------

    def binop(
        self, op: str, lhs: OperandLike, rhs: OperandLike,
        dest: Optional[VirtualRegister] = None,
    ) -> VirtualRegister:
        dest = dest or self.fresh()
        self._emit(BinOp(op, dest, self._coerce(lhs), self._coerce(rhs)))
        return dest

    def add(self, lhs, rhs, dest=None):
        return self.binop("add", lhs, rhs, dest)

    def sub(self, lhs, rhs, dest=None):
        return self.binop("sub", lhs, rhs, dest)

    def mul(self, lhs, rhs, dest=None):
        return self.binop("mul", lhs, rhs, dest)

    def sdiv(self, lhs, rhs, dest=None):
        return self.binop("sdiv", lhs, rhs, dest)

    def srem(self, lhs, rhs, dest=None):
        return self.binop("srem", lhs, rhs, dest)

    def and_(self, lhs, rhs, dest=None):
        return self.binop("and", lhs, rhs, dest)

    def or_(self, lhs, rhs, dest=None):
        return self.binop("or", lhs, rhs, dest)

    def xor(self, lhs, rhs, dest=None):
        return self.binop("xor", lhs, rhs, dest)

    def shl(self, lhs, rhs, dest=None):
        return self.binop("shl", lhs, rhs, dest)

    def lshr(self, lhs, rhs, dest=None):
        return self.binop("lshr", lhs, rhs, dest)

    def fadd(self, lhs, rhs, dest=None):
        return self.binop("fadd", lhs, rhs, dest)

    def fsub(self, lhs, rhs, dest=None):
        return self.binop("fsub", lhs, rhs, dest)

    def fmul(self, lhs, rhs, dest=None):
        return self.binop("fmul", lhs, rhs, dest)

    def fdiv(self, lhs, rhs, dest=None):
        return self.binop("fdiv", lhs, rhs, dest)

    def unop(self, op: str, src: OperandLike, dest=None) -> VirtualRegister:
        dest = dest or self.fresh()
        self._emit(UnaryOp(op, dest, self._coerce(src)))
        return dest

    def cmp(self, pred: str, lhs: OperandLike, rhs: OperandLike, dest=None):
        dest = dest or self.fresh("c")
        self._emit(Compare(pred, dest, self._coerce(lhs), self._coerce(rhs)))
        return dest

    def select(self, cond, if_true, if_false, dest=None):
        dest = dest or self.fresh()
        self._emit(
            Select(
                dest,
                self._coerce(cond),
                self._coerce(if_true),
                self._coerce(if_false),
            )
        )
        return dest

    def mov(self, src: OperandLike, dest=None) -> VirtualRegister:
        dest = dest or self.fresh()
        self._emit(Move(dest, self._coerce(src)))
        return dest

    # -- memory ----------------------------------------------------------

    def load(self, ref: MemRefLike, index: OperandLike = 0, dest=None):
        dest = dest or self.fresh("v")
        self._emit(Load(dest, self._coerce_ref(ref, index)))
        return dest

    def store(self, ref: MemRefLike, index_or_value, value=None) -> None:
        """``store(ref, value)`` or ``store(base, index, value)``."""
        if value is None:
            mem = self._coerce_ref(ref)
            val = index_or_value
        else:
            mem = self._coerce_ref(ref, index_or_value)
            val = value
        self._emit(Store(mem, self._coerce(val)))

    def addrof(self, ref: MemRefLike, index: OperandLike = 0, dest=None):
        dest = dest or self.fresh("p", Type.PTR)
        self._emit(AddrOf(dest, self._coerce_ref(ref, index)))
        return dest

    def alloc(self, size: OperandLike, dest=None) -> VirtualRegister:
        dest = dest or self.fresh("p", Type.PTR)
        self._emit(Alloc(dest, self._coerce(size)))
        return dest

    # -- control flow ------------------------------------------------------

    def br(self, cond: OperandLike, if_true: str, if_false: str) -> None:
        self._emit(Branch(self._coerce(cond), if_true, if_false))

    def jmp(self, target: str) -> None:
        self._emit(Jump(target))

    def call(
        self,
        callee: str,
        args: Sequence[OperandLike] = (),
        dest: Optional[VirtualRegister] = None,
        returns: bool = True,
    ) -> Optional[VirtualRegister]:
        if returns and dest is None:
            dest = self.fresh("r")
        coerced = [self._coerce(a) for a in args]
        self._emit(Call(dest if returns else None, callee, coerced))
        return dest if returns else None

    def ret(self, value: Optional[OperandLike] = None) -> None:
        self._emit(Ret(self._coerce(value) if value is not None else None))

    # -- threads -----------------------------------------------------------

    def spawn(
        self,
        callee: str,
        args: Sequence[OperandLike] = (),
        dest: Optional[VirtualRegister] = None,
    ) -> VirtualRegister:
        dest = dest or self.fresh("tid")
        self._emit(Spawn(dest, callee, [self._coerce(a) for a in args]))
        return dest

    def join(
        self, thread: OperandLike, dest: Optional[VirtualRegister] = None
    ) -> VirtualRegister:
        dest = dest or self.fresh("r")
        self._emit(Join(dest, self._coerce(thread)))
        return dest
