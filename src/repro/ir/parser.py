"""A parser for the textual IR format emitted by :mod:`repro.ir.printer`.

``parse_module(module_to_text(m))`` reconstructs a structurally
identical module, which the tests verify by comparing re-printed text
and execution results.  Register pointer-ness is not written in the
text, so the parser infers it: registers defined by ``addrof``/``alloc``
or used as a memory-reference base are pointer-typed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.ir.function import Function
from repro.ir.instructions import (
    AddrOf,
    Alloc,
    BINARY_OPS,
    BinOp,
    Branch,
    Call,
    CheckpointMem,
    CheckpointReg,
    ClearRecoveryPtr,
    Compare,
    Join,
    Jump,
    Load,
    Move,
    RestoreCheckpoints,
    Ret,
    Select,
    SetRecoveryPtr,
    Spawn,
    Store,
    UNARY_OPS,
    UnaryOp,
)
from repro.ir.module import Module
from repro.ir.types import Type
from repro.ir.values import Constant, MemoryObject, MemRef, VirtualRegister


class ParseError(Exception):
    """Malformed IR text."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line!r}")
        self.line_no = line_no
        self.line = line


_OBJECT_RE = re.compile(
    r"^(global|stack)\s+@(\w+)\[(\d+)\](?:\s*=\s*\[(.*)\])?$"
)
_FUNC_RE = re.compile(r"^func\s+(\w+)\(([^)]*)\)\s*\{$")
_LABEL_RE = re.compile(r"^([\w.]+):$")
_REF_RE = re.compile(r"^([@%])(\w+)\[(.+)\]$")
_CALL_RE = re.compile(r"^call\s+(\w+)\((.*)\)$")
_SPAWN_RE = re.compile(r"^spawn\s+(\w+)\((.*)\)$")


def _parse_number(token: str) -> Union[int, float]:
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    return float(token)


class _FunctionParser:
    """Parses one function body with two-pass pointer-type inference."""

    def __init__(self, module: Module, name: str, param_names: List[str]) -> None:
        self.module = module
        self.name = name
        self.param_names = param_names
        self.ptr_regs: Set[str] = set()
        self.stack_objects: Dict[str, MemoryObject] = {}
        # (label, [raw instruction lines with line numbers])
        self.blocks: List[Tuple[str, List[Tuple[int, str]]]] = []

    # -- pass 1: structure + pointer inference -------------------------------

    def scan_line(self, line_no: int, line: str) -> None:
        ref_match = re.search(r"%(\w+)\[", line)
        if ref_match:
            self.ptr_regs.add(ref_match.group(1))
        dest_match = re.match(r"^%(\w+) = (addrof|alloc)\b", line)
        if dest_match:
            self.ptr_regs.add(dest_match.group(1))

    # -- operand/reference helpers -------------------------------------------

    def reg(self, name: str) -> VirtualRegister:
        reg_type = Type.PTR if name in self.ptr_regs else Type.I64
        return VirtualRegister(name, reg_type)

    def operand(self, token: str, line_no: int, line: str):
        token = token.strip()
        if token.startswith("%"):
            return self.reg(token[1:])
        try:
            value = _parse_number(token)
        except ValueError:
            raise ParseError(f"bad operand {token!r}", line_no, line) from None
        if isinstance(value, float):
            return Constant(value, Type.F64)
        return Constant(value)

    def memref(self, token: str, line_no: int, line: str) -> MemRef:
        match = _REF_RE.match(token.strip())
        if not match:
            raise ParseError(f"bad memory reference {token!r}", line_no, line)
        sigil, base_name, index_token = match.groups()
        if sigil == "@":
            base = self.stack_objects.get(base_name) or self.module.globals.get(
                base_name
            )
            if base is None:
                raise ParseError(
                    f"unknown memory object @{base_name}", line_no, line
                )
        else:
            base = self.reg(base_name)
        return MemRef(base, self.operand(index_token, line_no, line))

    # -- pass 2: instruction parsing ------------------------------------------

    def parse_instruction(self, line_no: int, line: str):
        # Assignment forms: "%dest = <rhs>".
        assign = re.match(r"^%(\w+) = (.+)$", line)
        if assign:
            dest_name, rhs = assign.groups()
            return self._parse_assignment(dest_name, rhs.strip(), line_no, line)
        return self._parse_statement(line, line_no)

    def _split_args(self, text: str) -> List[str]:
        return [part.strip() for part in text.split(",")] if text.strip() else []

    def _parse_assignment(self, dest_name: str, rhs: str, line_no: int, line: str):
        dest = self.reg(dest_name)
        head, _, tail = rhs.partition(" ")
        if head == "mov":
            return Move(dest, self.operand(tail, line_no, line))
        if head == "load":
            return Load(dest, self.memref(tail, line_no, line))
        if head == "addrof":
            return AddrOf(dest, self.memref(tail, line_no, line))
        if head == "alloc":
            return Alloc(dest, self.operand(tail, line_no, line))
        if head == "select":
            parts = self._split_args(tail)
            if len(parts) != 3:
                raise ParseError("select needs 3 operands", line_no, line)
            return Select(dest, *(self.operand(p, line_no, line) for p in parts))
        if head.startswith("cmp."):
            pred = head[len("cmp."):]
            parts = self._split_args(tail)
            if len(parts) != 2:
                raise ParseError("cmp needs 2 operands", line_no, line)
            return Compare(
                pred, dest, *(self.operand(p, line_no, line) for p in parts)
            )
        if head in BINARY_OPS:
            parts = self._split_args(tail)
            if len(parts) != 2:
                raise ParseError(f"{head} needs 2 operands", line_no, line)
            return BinOp(
                head, dest, *(self.operand(p, line_no, line) for p in parts)
            )
        if head in UNARY_OPS:
            return UnaryOp(head, dest, self.operand(tail, line_no, line))
        if head == "join":
            return Join(dest, self.operand(tail, line_no, line))
        spawn = _SPAWN_RE.match(rhs)
        if spawn:
            callee, args = spawn.groups()
            return Spawn(
                dest,
                callee,
                [self.operand(a, line_no, line) for a in self._split_args(args)],
            )
        call = _CALL_RE.match(rhs)
        if call:
            callee, args = call.groups()
            return Call(
                dest,
                callee,
                [self.operand(a, line_no, line) for a in self._split_args(args)],
            )
        raise ParseError(f"unknown instruction {rhs!r}", line_no, line)

    def _parse_statement(self, line: str, line_no: int):
        head, _, tail = line.partition(" ")
        if head == "store":
            ref_token, _, value_token = tail.partition(",")
            return Store(
                self.memref(ref_token, line_no, line),
                self.operand(value_token, line_no, line),
            )
        if head == "br":
            parts = self._split_args(tail)
            if len(parts) != 3:
                raise ParseError("br needs cond and 2 labels", line_no, line)
            return Branch(self.operand(parts[0], line_no, line), parts[1], parts[2])
        if head == "jmp":
            return Jump(tail.strip())
        if head == "ret" or line.strip() == "ret":
            token = tail.strip()
            return Ret(self.operand(token, line_no, line) if token else None)
        if head == "set_recovery_ptr":
            rid, label = self._split_args(tail)
            return SetRecoveryPtr(int(rid[1:]), label)
        if head == "clear_recovery_ptr":
            return ClearRecoveryPtr(int(tail.strip()[1:]))
        if head == "ckpt_reg":
            rid, reg_token = self._split_args(tail)
            return CheckpointReg(int(rid[1:]), self.reg(reg_token[1:]))
        if head == "ckpt_mem":
            rid, ref_token = self._split_args(tail)
            return CheckpointMem(int(rid[1:]), self.memref(ref_token, line_no, line))
        if head == "restore":
            return RestoreCheckpoints(int(tail.strip()[1:]))
        call = _CALL_RE.match(line)
        if call:
            callee, args = call.groups()
            return Call(
                None,
                callee,
                [self.operand(a, line_no, line) for a in self._split_args(args)],
            )
        raise ParseError(f"unknown statement {line!r}", line_no, line)


def parse_module(text: str) -> Module:
    """Parse the printer's textual format back into a :class:`Module`."""
    lines = text.splitlines()
    module: Optional[Module] = None
    current: Optional[_FunctionParser] = None
    parsers: List[_FunctionParser] = []

    # Pass 1: structure, declarations, pointer inference.
    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            # Comment lines: provenance headers on checked-in examples
            # and fuzz-corpus repros.  The printer never emits them, so
            # print -> parse -> print stays a fixpoint.
            continue
        if line.startswith("module "):
            module = Module(line[len("module "):].strip())
            continue
        if module is None:
            raise ParseError("text must start with a module header", line_no, raw)
        if line.startswith("extern "):
            module.declare_external(line[len("extern "):].strip())
            continue
        obj_match = _OBJECT_RE.match(line)
        if obj_match:
            kind, name, size, init_text = obj_match.groups()
            # ``= []`` is an empty-but-present initializer — distinct
            # from no initializer at all (``init_text is None``), which
            # the printer would otherwise fail to round-trip.
            if init_text is None:
                init = None
            elif not init_text.strip():
                init = []
            else:
                init = [
                    _parse_number(tok.strip())
                    for tok in init_text.split(",")
                ]
            if kind == "global":
                module.add_global(name, int(size), init=init)
            else:
                if current is None:
                    raise ParseError("stack object outside function", line_no, raw)
                obj = MemoryObject(name, int(size), kind="stack", init=init)
                current.stack_objects[name] = obj
            continue
        func_match = _FUNC_RE.match(line)
        if func_match:
            name, params_text = func_match.groups()
            params = [
                p.strip()[1:] for p in params_text.split(",") if p.strip()
            ]
            current = _FunctionParser(module, name, params)
            parsers.append(current)
            continue
        if line == "}":
            current = None
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            if current is None:
                raise ParseError("label outside function", line_no, raw)
            current.blocks.append((label_match.group(1), []))
            continue
        if current is None or not current.blocks:
            raise ParseError("instruction outside a block", line_no, raw)
        current.blocks[-1][1].append((line_no, line))
        current.scan_line(line_no, line)

    if module is None:
        raise ParseError("empty input", 0, "")

    # Pass 2: build functions and instructions.
    for parser in parsers:
        params = [parser.reg(p) for p in parser.param_names]
        func = module.add_function(parser.name, params=params)
        for obj in parser.stack_objects.values():
            func.stack_objects[obj.name] = obj
        for label, _body in parser.blocks:
            func.add_block(label)
        for label, body in parser.blocks:
            block = func.blocks[label]
            for line_no, line in body:
                block.instructions.append(parser.parse_instruction(line_no, line))
    return module
