"""The repro compiler IR.

A small register-based (non-SSA) intermediate representation with
word-addressed memory objects, designed to carry exactly the information
the Encore analyses need: a CFG of basic blocks, load/store instructions
whose address operands expose base object and index, virtual registers
for liveness, and calls (analyzable or opaque).
"""

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    AddrOf,
    Alloc,
    BinOp,
    Branch,
    Call,
    CheckpointMem,
    CheckpointReg,
    ClearRecoveryPtr,
    Compare,
    Instruction,
    Join,
    Jump,
    Load,
    Move,
    RestoreCheckpoints,
    Ret,
    Select,
    SetRecoveryPtr,
    Spawn,
    Store,
    UnaryOp,
)
from repro.ir.module import Module
from repro.ir.parser import ParseError, parse_module
from repro.ir.printer import function_to_text, module_to_text
from repro.ir.types import Type, WORD_BYTES, wrap_int
from repro.ir.values import Constant, MemoryObject, MemRef, Operand, VirtualRegister
from repro.ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "AddrOf",
    "Alloc",
    "BasicBlock",
    "BinOp",
    "Branch",
    "Call",
    "CheckpointMem",
    "CheckpointReg",
    "ClearRecoveryPtr",
    "Compare",
    "Constant",
    "Function",
    "IRBuilder",
    "Instruction",
    "Join",
    "Jump",
    "Load",
    "MemRef",
    "MemoryObject",
    "Module",
    "Move",
    "Operand",
    "ParseError",
    "RestoreCheckpoints",
    "Ret",
    "Select",
    "SetRecoveryPtr",
    "Spawn",
    "Store",
    "Type",
    "UnaryOp",
    "VerificationError",
    "VirtualRegister",
    "WORD_BYTES",
    "function_to_text",
    "module_to_text",
    "parse_module",
    "verify_function",
    "verify_module",
    "wrap_int",
]
