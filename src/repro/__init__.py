"""repro — a reproduction of Encore (MICRO 2011).

Encore: low-cost, fine-grained transient fault recovery via compiler-
constructed, statistically idempotent code regions.

Public entry points:

* :mod:`repro.ir` — the compiler IR workloads are written in.
* :mod:`repro.encore` — the Encore pipeline (analysis, region formation,
  instrumentation, coverage model).
* :mod:`repro.runtime` — interpreter, fault injection, and recovery.
* :mod:`repro.workloads` — the benchmark suite.
* :mod:`repro.experiments` — regenerators for every paper table/figure.
"""

__version__ = "1.0.0"
