"""Block-local copy and constant propagation.

Within one basic block, a ``dest = mov src`` makes ``dest`` an alias of
``src`` until either register is redefined; subsequent uses of ``dest``
are rewritten to ``src``.  Constants propagate the same way, feeding the
folding pass.  Staying block-local keeps the pass trivially sound in a
non-SSA IR.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Move
from repro.ir.values import Constant, MemRef, Operand, VirtualRegister


def _rewrite_operand(operand, env: Dict[VirtualRegister, Operand]):
    if isinstance(operand, VirtualRegister) and operand in env:
        return env[operand]
    return operand


def _rewrite_ref(ref: MemRef, env) -> MemRef:
    base = ref.base
    if isinstance(base, VirtualRegister) and base in env:
        replacement = env[base]
        if isinstance(replacement, VirtualRegister):
            base = replacement
    index = _rewrite_operand(ref.index, env)
    if base is ref.base and index is ref.index:
        return ref
    return MemRef(base, index)


def _invalidate(env: Dict[VirtualRegister, Operand], reg: VirtualRegister) -> None:
    env.pop(reg, None)
    for key in [k for k, v in env.items() if v == reg]:
        env.pop(key)


def propagate_block(block: BasicBlock) -> int:
    """Propagate copies/constants through one block; returns #rewrites."""
    env: Dict[VirtualRegister, Operand] = {}
    rewrites = 0
    for inst in block.instructions:
        # Rewrite uses first (before this instruction's defs invalidate).
        # CheckpointReg's operand must remain a register, so it only
        # accepts register-to-register copies.
        for attr in ("lhs", "rhs", "src", "cond", "if_true", "if_false",
                     "value", "size", "reg"):
            if hasattr(inst, attr):
                old = getattr(inst, attr)
                if isinstance(old, VirtualRegister):
                    new = _rewrite_operand(old, env)
                    if attr == "reg" and not isinstance(new, VirtualRegister):
                        continue
                    if new is not old:
                        setattr(inst, attr, new)
                        rewrites += 1
        if hasattr(inst, "ref"):
            new_ref = _rewrite_ref(inst.ref, env)
            if new_ref is not inst.ref:
                inst.ref = new_ref
                rewrites += 1
        if hasattr(inst, "args"):
            for i, arg in enumerate(inst.args):
                new = _rewrite_operand(arg, env)
                if new is not arg:
                    inst.args[i] = new
                    rewrites += 1
        # Update the environment with this instruction's effect.
        for dest in inst.defs():
            _invalidate(env, dest)
        if isinstance(inst, Move):
            src = inst.src
            if isinstance(src, (Constant, VirtualRegister)) and src != inst.dest:
                env[inst.dest] = src
    return rewrites


def propagate_function(func: Function) -> int:
    return sum(propagate_block(block) for block in func)
