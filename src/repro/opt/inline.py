"""Function inlining.

Small helper functions (clamps, min/max, fixed-point helpers) fragment
Encore's regions: a fault striking inside a seven-instruction callee is
almost never detected before the callee returns, so the callee's own
region contributes nearly nothing, while the caller's region would have
covered the same work for free.  A real -O3 inlines these helpers; this
pass does the same for the repro IR.

Mechanics: the call site's block is split at the call; the callee's
blocks are cloned with renamed labels and registers, parameters become
moves of the argument operands, and every ``ret`` becomes a move into
the call's destination plus a jump to the split-off continuation.
Callee stack objects are re-declared in the caller with fresh names —
semantically fine because inlined activations are not recursive.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    AddrOf,
    Alloc,
    BinOp,
    Branch,
    Call,
    Compare,
    Jump,
    Load,
    Move,
    Ret,
    Select,
    Store,
    UnaryOp,
)
from repro.ir.module import Module
from repro.ir.values import Constant, MemoryObject, MemRef, VirtualRegister

_counter = itertools.count()


def _is_inlinable(func: Function, module: Module, max_size: int) -> bool:
    if func.instruction_count() > max_size:
        return False
    for block in func:
        for inst in block:
            if inst.is_instrumentation:
                return False
            if inst.opcode == "call":
                # Only leaf-ish candidates: calls to externals or other
                # functions complicate size/recursion reasoning.
                return False
    return True


class _Renamer:
    """Clones callee instructions into the caller's namespace."""

    def __init__(
        self,
        caller: Function,
        callee: Function,
        args: List,
        tag: str,
    ) -> None:
        self.caller = caller
        self.callee = callee
        self.tag = tag
        self.reg_map: Dict[VirtualRegister, VirtualRegister] = {}
        self.obj_map: Dict[str, MemoryObject] = {}
        for param, arg in zip(callee.params, args):
            # Parameters get fresh caller registers seeded by moves.
            self.reg_map[param] = self._fresh(param)
        for name, obj in callee.stack_objects.items():
            clone_name = f"{name}__{tag}"
            self.obj_map[name] = self.caller.add_stack_object(
                clone_name, obj.size, init=obj.init
            )

    def _fresh(self, reg: VirtualRegister) -> VirtualRegister:
        return VirtualRegister(f"{reg.name}__{self.tag}", reg.type)

    def reg(self, reg: VirtualRegister) -> VirtualRegister:
        if reg not in self.reg_map:
            self.reg_map[reg] = self._fresh(reg)
        return self.reg_map[reg]

    def operand(self, operand):
        if isinstance(operand, VirtualRegister):
            return self.reg(operand)
        return operand

    def ref(self, ref: MemRef) -> MemRef:
        base = ref.base
        if isinstance(base, VirtualRegister):
            base = self.reg(base)
        elif isinstance(base, MemoryObject) and base.name in self.callee.stack_objects:
            base = self.obj_map[base.name]
        return MemRef(base, self.operand(ref.index))

    def label(self, label: str) -> str:
        return f"{label}__{self.tag}"

    def instruction(self, inst, ret_dest, continue_label: str):
        """Clone one callee instruction; rets become move+jump."""
        if isinstance(inst, Ret):
            cloned: List = []
            if ret_dest is not None:
                value = (
                    self.operand(inst.value) if inst.value is not None else Constant(0)
                )
                cloned.append(Move(ret_dest, value))
            cloned.append(Jump(continue_label))
            return cloned
        if isinstance(inst, BinOp):
            return [BinOp(inst.op, self.reg(inst.dest),
                          self.operand(inst.lhs), self.operand(inst.rhs))]
        if isinstance(inst, UnaryOp):
            return [UnaryOp(inst.op, self.reg(inst.dest), self.operand(inst.src))]
        if isinstance(inst, Compare):
            return [Compare(inst.pred, self.reg(inst.dest),
                            self.operand(inst.lhs), self.operand(inst.rhs))]
        if isinstance(inst, Select):
            return [Select(self.reg(inst.dest), self.operand(inst.cond),
                           self.operand(inst.if_true), self.operand(inst.if_false))]
        if isinstance(inst, Move):
            return [Move(self.reg(inst.dest), self.operand(inst.src))]
        if isinstance(inst, Load):
            return [Load(self.reg(inst.dest), self.ref(inst.ref))]
        if isinstance(inst, Store):
            return [Store(self.ref(inst.ref), self.operand(inst.value))]
        if isinstance(inst, AddrOf):
            return [AddrOf(self.reg(inst.dest), self.ref(inst.ref))]
        if isinstance(inst, Alloc):
            return [Alloc(self.reg(inst.dest), self.operand(inst.size))]
        if isinstance(inst, Branch):
            return [Branch(self.operand(inst.cond),
                           self.label(inst.if_true), self.label(inst.if_false))]
        if isinstance(inst, Jump):
            return [Jump(self.label(inst.target))]
        raise ValueError(f"cannot inline instruction {inst}")


def _inline_one_call(
    module: Module,
    caller: Function,
    block_label: str,
    call_index: int,
) -> None:
    block = caller.blocks[block_label]
    call = block.instructions[call_index]
    callee = module.function(call.callee)
    tag = f"inl{next(_counter)}"
    renamer = _Renamer(caller, callee, call.args, tag)

    continue_label = f"{block_label}__{tag}_cont"
    continuation = caller.add_block(continue_label)
    continuation.instructions = block.instructions[call_index + 1:]
    block.instructions = block.instructions[:call_index]

    # Seed parameter registers, then enter the inlined entry block.
    for param, arg in zip(callee.params, call.args):
        block.instructions.append(Move(renamer.reg(param), arg))
    block.instructions.append(Jump(renamer.label(callee.entry_label)))

    for clone_label, callee_block in callee.blocks.items():
        new_block = caller.add_block(renamer.label(clone_label))
        for inst in callee_block.instructions:
            new_block.instructions.extend(
                renamer.instruction(inst, call.dest, continue_label)
            )


def inline_functions(
    module: Module, max_size: int = 40, max_rounds: int = 4
) -> int:
    """Inline small leaf functions into their callers; returns #sites.

    Callers are visited bottom-up over the call graph's SCCs (recursive
    cycles are never candidates), so a helper's helper is inlined before
    the helper itself is considered; a few extra rounds catch functions
    that only become leaves once their callees disappear.
    """
    from repro.analysis.callgraph import build_call_graph

    total = 0
    for _ in range(max_rounds):
        graph = build_call_graph(module)
        inlinable: Set[str] = {
            name
            for name, func in module.functions.items()
            if func.blocks
            and not graph.is_recursive(name)
            and _is_inlinable(func, module, max_size)
        }
        sites: List = []
        for caller_name in graph.bottom_up():
            caller = module.function(caller_name)
            if not caller.blocks:
                continue
            for block in list(caller):
                for index, inst in enumerate(block.instructions):
                    if (
                        inst.opcode == "call"
                        and inst.callee in inlinable
                        and inst.callee != caller.name
                    ):
                        sites.append((caller, block.label, index))
                        break  # indices shift after splicing: one per block pass
        if not sites:
            break
        for caller, label, index in sites:
            _inline_one_call(module, caller, label, index)
        total += len(sites)
    return total
