"""Dead-code elimination for pure instructions.

Removes side-effect-free instructions (arithmetic, compares, moves,
address materialization, loads from memory are *kept* — a load can trap
on a bad index, and removing it would change the program's symptom
behaviour under fault injection) whose destination is dead.  Liveness is
recomputed per iteration until a fixpoint.
"""

from __future__ import annotations

from typing import Set

from repro.analysis.cfg import CFGView
from repro.analysis.liveness import LivenessAnalysis
from repro.ir.function import Function
from repro.ir.values import VirtualRegister

#: Opcodes safe to delete when their destination is dead.
_PURE_OPCODES = frozenset(["binop", "unop", "cmp", "select", "mov", "addrof"])


def eliminate_dead_code(func: Function) -> int:
    """Delete dead pure instructions; returns the number removed."""
    removed_total = 0
    while True:
        removed = _one_round(func)
        removed_total += removed
        if removed == 0:
            return removed_total


def _one_round(func: Function) -> int:
    cfg = CFGView(func)
    liveness = LivenessAnalysis(func, cfg)
    removed = 0
    for label in cfg.labels:
        block = func.blocks[label]
        live: Set[VirtualRegister] = set(liveness.live_out(label))
        keep = []
        for inst in reversed(block.instructions):
            defs = inst.defs()
            dead = (
                inst.opcode in _PURE_OPCODES
                and defs
                and all(d not in live for d in defs)
            )
            if dead:
                removed += 1
                continue
            keep.append(inst)
            for d in defs:
                live.discard(d)
            live.update(inst.uses())
        keep.reverse()
        block.instructions = keep
    return removed
