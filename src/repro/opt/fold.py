"""Constant folding and algebraic simplification.

The paper's workloads are "compiled with standard -O3 optimizations";
this package provides the corresponding clean-up passes for our IR so
workloads reach the Encore passes in optimized form.  Folding must
mirror the interpreter's semantics exactly (64-bit wrapping,
truncate-toward-zero division); anything that would trap at run time
(division by zero) is left in place.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from repro.ir.function import Function
from repro.ir.instructions import BinOp, Compare, Move, Select, UnaryOp
from repro.ir.types import Type, wrap_int
from repro.ir.values import Constant, Operand, VirtualRegister


def fold_binop(op: str, lhs: Union[int, float], rhs: Union[int, float]):
    """Evaluate a binary op on constants; None when it must stay runtime."""
    try:
        if op == "add":
            return wrap_int(int(lhs) + int(rhs))
        if op == "sub":
            return wrap_int(int(lhs) - int(rhs))
        if op == "mul":
            return wrap_int(int(lhs) * int(rhs))
        if op == "sdiv":
            if int(rhs) == 0:
                return None
            return wrap_int(int(int(lhs) / int(rhs)))
        if op == "srem":
            if int(rhs) == 0:
                return None
            return wrap_int(int(lhs) - int(int(lhs) / int(rhs)) * int(rhs))
        if op == "and":
            return wrap_int(int(lhs) & int(rhs))
        if op == "or":
            return wrap_int(int(lhs) | int(rhs))
        if op == "xor":
            return wrap_int(int(lhs) ^ int(rhs))
        if op == "shl":
            return wrap_int(int(lhs) << (int(rhs) & 63))
        if op == "lshr":
            return wrap_int((int(lhs) & ((1 << 64) - 1)) >> (int(rhs) & 63))
        if op == "ashr":
            return wrap_int(int(lhs) >> (int(rhs) & 63))
        if op == "min":
            return min(int(lhs), int(rhs))
        if op == "max":
            return max(int(lhs), int(rhs))
        if op == "fadd":
            return float(lhs) + float(rhs)
        if op == "fsub":
            return float(lhs) - float(rhs)
        if op == "fmul":
            return float(lhs) * float(rhs)
        if op == "fdiv":
            if float(rhs) == 0.0:
                return None
            return float(lhs) / float(rhs)
        if op == "fmin":
            return min(float(lhs), float(rhs))
        if op == "fmax":
            return max(float(lhs), float(rhs))
    except (TypeError, ValueError, OverflowError):
        return None
    return None


def fold_compare(pred: str, lhs, rhs) -> Optional[int]:
    try:
        if pred in ("eq", "feq"):
            return int(lhs == rhs)
        if pred in ("ne", "fne"):
            return int(lhs != rhs)
        if pred in ("slt", "flt"):
            return int(lhs < rhs)
        if pred in ("sle", "fle"):
            return int(lhs <= rhs)
        if pred in ("sgt", "fgt"):
            return int(lhs > rhs)
        if pred in ("sge", "fge"):
            return int(lhs >= rhs)
    except TypeError:
        return None
    return None


def fold_unop(op: str, src) -> Optional[Union[int, float]]:
    try:
        if op == "neg":
            return wrap_int(-int(src))
        if op == "not":
            return wrap_int(~int(src))
        if op == "fneg":
            return -float(src)
        if op == "sitofp":
            return float(int(src))
        if op == "fptosi":
            return wrap_int(int(float(src)))
        if op == "fsqrt":
            if float(src) < 0:
                return None
            return math.sqrt(float(src))
        if op == "fabs":
            return abs(float(src))
    except (TypeError, ValueError, OverflowError):
        return None
    return None


def _const_of(value: Union[int, float]) -> Constant:
    if isinstance(value, float):
        return Constant(value, Type.F64)
    return Constant(value)


def _algebraic(op: str, lhs: Operand, rhs: Operand) -> Optional[Operand]:
    """Strength-reduce identities: x+0, x-0, x*1, x*0, x&0, x|0, x^0, x<<0."""
    lc = lhs.value if isinstance(lhs, Constant) else None
    rc = rhs.value if isinstance(rhs, Constant) else None
    if op == "add":
        if rc == 0:
            return lhs
        if lc == 0:
            return rhs
    elif op == "sub" and rc == 0:
        return lhs
    elif op == "mul":
        if rc == 1:
            return lhs
        if lc == 1:
            return rhs
        if rc == 0 or lc == 0:
            return Constant(0)
    elif op in ("and",):
        if rc == 0 or lc == 0:
            return Constant(0)
    elif op in ("or", "xor"):
        if rc == 0:
            return lhs
        if lc == 0:
            return rhs
    elif op in ("shl", "lshr", "ashr") and rc == 0:
        return lhs
    return None


def fold_function(func: Function) -> int:
    """One pass of constant folding over ``func``; returns #rewrites.

    Folded instructions become ``Move`` of a constant so downstream
    copy propagation and DCE can finish the job without this pass
    having to rewrite uses.
    """
    rewrites = 0
    for block in func:
        for i, inst in enumerate(block.instructions):
            replacement = None
            if isinstance(inst, BinOp):
                if isinstance(inst.lhs, Constant) and isinstance(inst.rhs, Constant):
                    value = fold_binop(inst.op, inst.lhs.value, inst.rhs.value)
                    if value is not None:
                        replacement = Move(inst.dest, _const_of(value))
                if replacement is None:
                    simpler = _algebraic(inst.op, inst.lhs, inst.rhs)
                    if simpler is not None:
                        replacement = Move(inst.dest, simpler)
            elif isinstance(inst, Compare):
                if isinstance(inst.lhs, Constant) and isinstance(inst.rhs, Constant):
                    value = fold_compare(inst.pred, inst.lhs.value, inst.rhs.value)
                    if value is not None:
                        replacement = Move(inst.dest, Constant(value))
            elif isinstance(inst, UnaryOp):
                if isinstance(inst.src, Constant):
                    value = fold_unop(inst.op, inst.src.value)
                    if value is not None:
                        replacement = Move(inst.dest, _const_of(value))
            elif isinstance(inst, Select):
                if isinstance(inst.cond, Constant):
                    chosen = inst.if_true if inst.cond.value else inst.if_false
                    replacement = Move(inst.dest, chosen)
            if replacement is not None and not (
                isinstance(inst, Move)
            ):
                block.instructions[i] = replacement
                rewrites += 1
    return rewrites
