"""Optimization passes: the "-O" substrate the paper's toolchain provides.

``optimize_module`` iterates constant folding, block-local copy
propagation, dead-code elimination, and CFG simplification to a
fixpoint — the clean-up mix a real compiler applies before a pass like
Encore sees the code.  Passes never run on instrumented functions.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.module import Module
from repro.opt.copyprop import propagate_block, propagate_function
from repro.opt.dce import eliminate_dead_code
from repro.opt.fold import fold_binop, fold_compare, fold_function, fold_unop
from repro.opt.inline import inline_functions
from repro.opt.simplifycfg import simplify_cfg


def optimize_function(func, max_rounds: int = 10) -> int:
    """Run the pass mix to a fixpoint on one function."""
    total = 0
    for _ in range(max_rounds):
        changed = fold_function(func)
        changed += propagate_function(func)
        changed += eliminate_dead_code(func)
        changed += simplify_cfg(func)
        total += changed
        if changed == 0:
            break
    return total


def optimize_module(
    module: Module, max_rounds: int = 10, inline: bool = True, stats=None
) -> Dict[str, int]:
    """Optimize every function; returns per-function rewrite counts.

    With ``inline=True`` small leaf functions are inlined first, then
    the per-function pass mix cleans up the spliced code.  Runs through
    the shared pass manager (:mod:`repro.pipeline.optpasses`); pass a
    :class:`repro.pipeline.PipelineStats` to collect per-pass timing.
    """
    # Lazy import: repro.pipeline.optpasses imports back into repro.opt
    # submodules for the rewrites themselves.
    from repro.pipeline.optpasses import run_opt_pipeline

    return run_opt_pipeline(
        module, max_rounds=max_rounds, inline=inline, stats=stats
    )


__all__ = [
    "eliminate_dead_code",
    "fold_binop",
    "fold_compare",
    "fold_function",
    "fold_unop",
    "inline_functions",
    "optimize_function",
    "optimize_module",
    "propagate_block",
    "propagate_function",
    "simplify_cfg",
]
