"""CFG simplification: constant branches, block merging, unreachable code.

Three classic clean-ups, iterated to a fixpoint:

* a ``br`` on a constant condition becomes a ``jmp`` (threading);
* a block ending in ``jmp t`` where ``t`` has exactly one predecessor
  (and is not the entry or a loop header of itself) is merged with ``t``;
* blocks unreachable from the entry are deleted.

The pass refuses to run on instrumented functions — Encore's recovery
blocks are intentionally unreachable from normal control flow.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.function import Function
from repro.ir.instructions import Branch, Jump
from repro.ir.values import Constant


def _has_instrumentation(func: Function) -> bool:
    return any(
        inst.is_instrumentation for block in func for inst in block
    )


def simplify_cfg(func: Function) -> int:
    """Simplify ``func``'s CFG in place; returns the number of rewrites."""
    if _has_instrumentation(func):
        return 0
    total = 0
    while True:
        changed = _thread_constant_branches(func)
        changed += _merge_straightline(func)
        changed += _remove_unreachable(func)
        total += changed
        if changed == 0:
            return total


def _thread_constant_branches(func: Function) -> int:
    changed = 0
    for block in func:
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.cond, Constant):
            target = term.if_true if term.cond.value else term.if_false
            block.instructions[-1] = Jump(target)
            changed += 1
        elif isinstance(term, Branch) and term.if_true == term.if_false:
            block.instructions[-1] = Jump(term.if_true)
            changed += 1
    return changed


def _merge_straightline(func: Function) -> int:
    changed = 0
    preds = func.predecessor_map()
    for label in list(func.blocks):
        block = func.blocks.get(label)
        if block is None:
            continue
        term = block.terminator
        if not isinstance(term, Jump):
            continue
        target = term.target
        if target == label or target == func.entry_label:
            continue
        if preds.get(target, []) != [label]:
            continue
        successor = func.blocks[target]
        block.instructions.pop()  # drop the jmp
        block.instructions.extend(successor.instructions)
        del func.blocks[target]
        preds = func.predecessor_map()
        changed += 1
    return changed


def _remove_unreachable(func: Function) -> int:
    reachable = func.reachable_labels()
    dead = [label for label in func.blocks if label not in reachable]
    for label in dead:
        del func.blocks[label]
    return len(dead)
