"""Profiling support: training-run execution counts for Encore heuristics."""

from repro.profiling.memprofile import (
    MemoryAccessProfile,
    SiteObservation,
    collect_memory_profile,
)
from repro.profiling.profile_data import ProfileData
from repro.profiling.profiler import profile_and_result, profile_module

__all__ = [
    "MemoryAccessProfile",
    "ProfileData",
    "SiteObservation",
    "collect_memory_profile",
    "profile_and_result",
    "profile_module",
]
