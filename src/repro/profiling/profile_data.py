"""Profile data: block/edge execution counts gathered from a training run.

Encore consumes profiles in three places (paper Sections 3.4.1–3.4.2):

* ``Pmin`` pruning — blocks whose execution probability (executions per
  enclosing-function invocation, clamped to [0, 1]) is at or below the
  threshold are excluded from the idempotence equations;
* region *coverage* — the dynamic length of the hot path through a
  region, used as the compile-time surrogate for recoverability; and
* region *cost* — checkpoint instructions relative to hot-path length.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, Optional, Tuple

BlockKey = Tuple[str, str]  # (function, label)
EdgeKey = Tuple[str, str, str]  # (function, src label, dst label)


@dataclasses.dataclass
class ProfileData:
    """Execution counts from one or more training runs."""

    block_counts: Dict[BlockKey, int] = dataclasses.field(default_factory=dict)
    edge_counts: Dict[EdgeKey, int] = dataclasses.field(default_factory=dict)
    call_counts: Dict[str, int] = dataclasses.field(default_factory=dict)
    total_instructions: int = 0

    # -- recording -------------------------------------------------------

    def record_block(self, func: str, label: str, count: int = 1) -> None:
        key = (func, label)
        self.block_counts[key] = self.block_counts.get(key, 0) + count

    def record_edge(self, func: str, src: str, dst: str, count: int = 1) -> None:
        key = (func, src, dst)
        self.edge_counts[key] = self.edge_counts.get(key, 0) + count

    def record_call(self, func: str, count: int = 1) -> None:
        self.call_counts[func] = self.call_counts.get(func, 0) + count

    def merge(self, other: "ProfileData") -> None:
        for key, count in other.block_counts.items():
            self.block_counts[key] = self.block_counts.get(key, 0) + count
        for key, count in other.edge_counts.items():
            self.edge_counts[key] = self.edge_counts.get(key, 0) + count
        for func, count in other.call_counts.items():
            self.call_counts[func] = self.call_counts.get(func, 0) + count
        self.total_instructions += other.total_instructions

    # -- queries -----------------------------------------------------------

    def block_count(self, func: str, label: str) -> int:
        return self.block_counts.get((func, label), 0)

    def edge_count(self, func: str, src: str, dst: str) -> int:
        return self.edge_counts.get((func, src, dst), 0)

    def function_entries(self, func: str) -> int:
        return self.call_counts.get(func, 0)

    def block_probability(self, func: str, label: str) -> float:
        """P(block executes | enclosing function invoked), clamped to 1.

        Blocks inside loops execute more often than the function itself;
        for pruning purposes only the "is this ever reached" shape
        matters, so the ratio is clamped to 1.0.
        """
        entries = self.function_entries(func)
        if entries == 0:
            return 0.0
        return min(1.0, self.block_count(func, label) / entries)

    def is_pruned(self, func: str, label: str, pmin: Optional[float]) -> bool:
        """Apply the Pmin heuristic (``None`` disables pruning).

        ``pmin == 0.0`` prunes exactly the blocks never executed during
        profiling, matching the paper's description of that setting.
        """
        if pmin is None:
            return False
        return self.block_probability(func, label) <= pmin

    def edge_probability(self, func: str, src: str, dst: str) -> float:
        """P(src -> dst | src executed)."""
        src_count = self.block_count(func, src)
        if src_count == 0:
            return 0.0
        return self.edge_count(func, src, dst) / src_count

    def hottest_successor(
        self, func: str, src: str, candidates: Iterable[str]
    ) -> Optional[str]:
        best = None
        best_count = -1
        for dst in candidates:
            count = self.edge_count(func, src, dst)
            if count > best_count:
                best = dst
                best_count = count
        return best

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        """Serialize so a training profile can ship alongside a binary."""
        return json.dumps({
            "blocks": [
                [func, label, count]
                for (func, label), count in sorted(self.block_counts.items())
            ],
            "edges": [
                [func, src, dst, count]
                for (func, src, dst), count in sorted(self.edge_counts.items())
            ],
            "calls": sorted(self.call_counts.items()),
            "total_instructions": self.total_instructions,
        })

    @classmethod
    def from_json(cls, text: str) -> "ProfileData":
        raw = json.loads(text)
        profile = cls()
        for func, label, count in raw["blocks"]:
            profile.block_counts[(func, label)] = count
        for func, src, dst, count in raw["edges"]:
            profile.edge_counts[(func, src, dst)] = count
        for func, count in raw["calls"]:
            profile.call_counts[func] = count
        profile.total_instructions = raw["total_instructions"]
        return profile
