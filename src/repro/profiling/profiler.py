"""Profiling runs: execute a module and collect a :class:`ProfileData`."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.ir.module import Module
from repro.profiling.profile_data import ProfileData
from repro.runtime.interpreter import ExecResult, Interpreter, StepEvent


class _ProfilingHook:
    """Post-step hook that counts block entries and intra-frame edges."""

    def __init__(self, profile: ProfileData) -> None:
        self.profile = profile
        # frame id -> label of the block the frame last executed in
        self._last_block: Dict[int, str] = {}

    def __call__(self, interp: Interpreter, event: StepEvent) -> None:
        if event.inst_index == 0:
            self.profile.record_block(event.func, event.block)
            prev = self._last_block.get(event.frame_id)
            if prev is not None and prev != event.block:
                self.profile.record_edge(event.func, prev, event.block)
            elif prev == event.block:
                # Self-loop edge (single-block loop).
                self.profile.record_edge(event.func, prev, event.block)
            if prev is None:
                self.profile.record_call(event.func)
        self._last_block[event.frame_id] = event.block
        self.profile.total_instructions += 1


def profile_module(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    runs: int = 1,
    max_steps: int = 20_000_000,
    externals=None,
) -> ProfileData:
    """Execute ``function`` ``runs`` times and return the merged profile."""
    profile = ProfileData()
    for _ in range(runs):
        hook = _ProfilingHook(profile)
        interp = Interpreter(
            module, max_steps=max_steps, post_step=hook, externals=externals
        )
        interp.run(function, args)
    return profile


def profile_and_result(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    output_objects: Sequence[str] = (),
    max_steps: int = 20_000_000,
    externals=None,
):
    """One profiling run returning both the profile and the exec result."""
    profile = ProfileData()
    hook = _ProfilingHook(profile)
    interp = Interpreter(
        module, max_steps=max_steps, post_step=hook, externals=externals
    )
    result = interp.run(function, args, output_objects=output_objects)
    return profile, result
