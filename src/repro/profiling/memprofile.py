"""Dynamic memory-access profiling (the paper's footnote-2 future work).

"Extending Encore to use more aggressive dynamic memory profiling is a
promising area of future work."  This module records, per static memory
instruction (identified by its stable ``(function, block, index)``
site), the concrete objects and word addresses it touched during a
training run.  The ``profiled`` alias mode uses these observations to
statistically refine the conservative static answers — in the same
best-effort spirit as Pmin pruning.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.ir.module import Module
from repro.runtime.interpreter import Interpreter, StepEvent

Site = Tuple[str, str, int]  # (function, block label, instruction index)
Address = Tuple[str, int]


@dataclasses.dataclass
class SiteObservation:
    """What one static memory instruction touched during profiling."""

    objects: Optional[Set[str]] = dataclasses.field(default_factory=set)
    addresses: Optional[Set[Address]] = dataclasses.field(default_factory=set)

    def record(self, addr: Address, max_objects: int, max_addresses: int) -> None:
        if self.objects is not None:
            self.objects.add(addr[0])
            if len(self.objects) > max_objects:
                self.objects = None  # too polymorphic: back to TOP
        if self.addresses is not None:
            self.addresses.add(addr)
            if len(self.addresses) > max_addresses:
                self.addresses = None


class MemoryAccessProfile:
    """Observed object/address sets per memory-instruction site."""

    def __init__(self, max_objects: int = 8, max_addresses: int = 64) -> None:
        self.max_objects = max_objects
        self.max_addresses = max_addresses
        self._sites: Dict[Site, SiteObservation] = {}

    def record(self, site: Site, addr: Address) -> None:
        obs = self._sites.get(site)
        if obs is None:
            obs = SiteObservation()
            self._sites[site] = obs
        obs.record(addr, self.max_objects, self.max_addresses)

    def observed_objects(self, site: Site) -> Optional[FrozenSet[str]]:
        """Objects the site touched, or None when unknown/overflowed."""
        obs = self._sites.get(site)
        if obs is None or obs.objects is None:
            return None
        return frozenset(obs.objects)

    def observed_addresses(self, site: Site) -> Optional[FrozenSet[Address]]:
        """Exact addresses touched, or None when unknown/overflowed."""
        obs = self._sites.get(site)
        if obs is None or obs.addresses is None:
            return None
        return frozenset(obs.addresses)

    def __len__(self) -> int:
        return len(self._sites)


def collect_memory_profile(
    module: Module,
    function: str = "main",
    args: Sequence = (),
    max_steps: int = 20_000_000,
    externals=None,
    max_objects: int = 8,
    max_addresses: int = 64,
) -> MemoryAccessProfile:
    """Execute once, recording every memory instruction's touched addresses.

    Run-time instance names are normalized back to static object names:
    per-frame stack instances (``buf@f3``) fold to their declaration and
    heap objects (``heap:f:bb#7``) to their allocation site, matching
    the abstractions the alias analysis uses.
    """
    profile = MemoryAccessProfile(max_objects, max_addresses)

    def normalize(name: str) -> str:
        if "@f" in name:
            return name.split("@f", 1)[0]
        if name.startswith("heap:") and "#" in name:
            return name.split("#", 1)[0]
        return name

    def hook(interp: Interpreter, event: StepEvent) -> None:
        if event.inst.is_instrumentation:
            return
        site = (event.func, event.block, event.inst_index)
        for obj, idx in list(event.loads) + list(event.stores):
            profile.record(site, (normalize(obj), idx))

    Interpreter(
        module, max_steps=max_steps, post_step=hook, externals=externals
    ).run(function, args)
    return profile
