"""Workload-authoring toolkit.

The benchmark programs in this package are written directly in the repro
IR.  :class:`Kit` wraps an :class:`IRBuilder` with structured-control
combinators (counted loops, if/then/else) and deterministic data
generators so each workload reads as its algorithm rather than as basic-
block bookkeeping.

Design note: the combinators always leave the builder positioned at the
join/exit block, so they nest arbitrarily — a workload body can open
loops inside conditionals inside loops and the CFG stays well-formed.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.ir import IRBuilder, Module, VirtualRegister
from repro.ir.values import Operand


@dataclasses.dataclass
class BuiltWorkload:
    """A ready-to-run benchmark program."""

    name: str
    module: Module
    args: Sequence = ()
    output_objects: Sequence[str] = ()
    externals: Optional[Dict[str, Callable]] = None
    entry: str = "main"


class Kit:
    """Structured-control sugar over an :class:`IRBuilder`."""

    def __init__(self, builder: IRBuilder) -> None:
        self.b = builder
        self._labels = itertools.count()

    def label(self, stem: str) -> str:
        return f"{stem}_{next(self._labels)}"

    # -- loops ------------------------------------------------------------

    def counted(
        self,
        count,
        body: Callable[[VirtualRegister], None],
        stem: str = "loop",
        start: int = 0,
        step: int = 1,
    ) -> VirtualRegister:
        """``for i in range(start, count, step): body(i)``.

        Returns the induction register (holding ``count`` afterwards).
        """
        b = self.b
        i = b.fresh("i")
        b.mov(start, i)
        header = self.label(f"{stem}_head")
        body_l = self.label(f"{stem}_body")
        exit_l = self.label(f"{stem}_exit")
        b.jmp(header)
        b.block(header)
        cond = b.cmp("slt", i, count)
        b.br(cond, body_l, exit_l)
        b.block(body_l)
        body(i)
        b.add(i, step, i)
        b.jmp(header)
        b.block(exit_l)
        return i

    def while_loop(
        self,
        cond_fn: Callable[[], VirtualRegister],
        body: Callable[[], None],
        stem: str = "while",
    ) -> None:
        """``while cond_fn(): body()`` — cond_fn emits the test each trip."""
        b = self.b
        header = self.label(f"{stem}_head")
        body_l = self.label(f"{stem}_body")
        exit_l = self.label(f"{stem}_exit")
        b.jmp(header)
        b.block(header)
        cond = cond_fn()
        b.br(cond, body_l, exit_l)
        b.block(body_l)
        body()
        b.jmp(header)
        b.block(exit_l)

    # -- conditionals -------------------------------------------------------

    def if_then(
        self, cond, then_fn: Callable[[], None], stem: str = "if"
    ) -> None:
        b = self.b
        then_l = self.label(f"{stem}_then")
        join_l = self.label(f"{stem}_join")
        b.br(cond, then_l, join_l)
        b.block(then_l)
        then_fn()
        b.jmp(join_l)
        b.block(join_l)

    def if_else(
        self,
        cond,
        then_fn: Callable[[], None],
        else_fn: Callable[[], None],
        stem: str = "if",
    ) -> None:
        b = self.b
        then_l = self.label(f"{stem}_then")
        else_l = self.label(f"{stem}_else")
        join_l = self.label(f"{stem}_join")
        b.br(cond, then_l, else_l)
        b.block(then_l)
        then_fn()
        b.jmp(join_l)
        b.block(else_l)
        else_fn()
        b.jmp(join_l)
        b.block(join_l)

    # -- common idioms --------------------------------------------------------

    def lcg(self, state_obj, index: int = 0) -> VirtualRegister:
        """Advance a linear-congruential PRNG held in memory.

        This is a deliberate load-modify-store (WAR) site: PRNG state is
        one of the classic idempotence violators the paper's Figure 2c
        discussion alludes to.
        """
        b = self.b
        state = b.load(state_obj, index)
        mixed = b.mul(state, 1103515245)
        mixed = b.add(mixed, 12345)
        mixed = b.and_(mixed, (1 << 31) - 1)
        b.store(state_obj, index, mixed)
        return mixed

    def checksum_into(self, out_obj, out_index, value) -> None:
        """``out[out_index] = (out[out_index] * 31 + value) mod 2^31``."""
        b = self.b
        cur = b.load(out_obj, out_index)
        mixed = b.mul(cur, 31)
        mixed = b.add(mixed, value)
        mixed = b.and_(mixed, (1 << 31) - 1)
        b.store(out_obj, out_index, mixed)

    def clamp(self, value, lo: int, hi: int) -> VirtualRegister:
        b = self.b
        bounded = b.binop("max", value, lo)
        return b.binop("min", bounded, hi)


#: The active input variant, in the SPEC train/ref tradition: profiles
#: are gathered on "train" data, and evaluation may use different "ref"
#: data to probe how the statistical (profile-derived) decisions hold up.
_DATA_VARIANT = "train"


def set_data_variant(variant: str) -> str:
    """Switch the input data set; returns the previous variant."""
    global _DATA_VARIANT
    previous = _DATA_VARIANT
    _DATA_VARIANT = variant
    return previous


def _seed(prefix: str, name: str) -> str:
    # "train" keeps the legacy seeds so existing goldens are unchanged.
    if _DATA_VARIANT == "train":
        return f"{prefix}:{name}"
    return f"{prefix}:{_DATA_VARIANT}:{name}"


def int_data(name: str, size: int, lo: int = 0, hi: int = 255) -> List[int]:
    """Deterministic pseudo-random initializer for a memory object."""
    rng = random.Random(_seed("data", name))
    return [rng.randint(lo, hi) for _ in range(size)]


def float_data(name: str, size: int, lo: float = -1.0, hi: float = 1.0) -> List[float]:
    rng = random.Random(_seed("fdata", name))
    return [rng.uniform(lo, hi) for _ in range(size)]


def new_workload(name: str) -> tuple:
    """Start a workload module: returns ``(module, kit)`` with main open."""
    module = Module(name)
    func = module.add_function("main")
    builder = IRBuilder(func)
    kit = Kit(builder)
    return module, kit


def indirect_handle(kit: Kit, module: Module, target, desc_name: str):
    """Access ``target`` through a pointer loaded from a descriptor cell.

    Mirrors compiled C, where buffers live behind struct fields: the
    pointer is stored into ``desc_name`` and immediately loaded back, so
    every later access goes through a register whose points-to set is
    TOP.  Conservative static alias analysis must then assume the
    accesses may alias anything — the source of the paper's gap between
    the Static and Optimistic alias-analysis overheads (Figure 7a).
    """
    from repro.ir import Type

    b = kit.b
    desc = module.add_global(desc_name, 1)
    p = b.addrof(target, 0)
    b.store(desc, 0, p)
    return b.load(desc, 0, dest=b.fresh("hbuf", Type.PTR))


def add_report_function(
    module: Module,
    stats_obj_name: str,
    name: str = "report",
    external_name: str = "sys_write",
) -> None:
    """Add an end-of-run summary routine that performs real output I/O.

    ``report()`` scans a stats/output object and hands each word to an
    opaque library call — the "system and library function calls for
    which relevant alias analysis information could not be easily
    obtained" behind the paper's persistent *Unknown* region segments
    (Figure 5).  It runs once, so the coverage it forfeits is tiny.
    """
    module.declare_external(external_name)
    fn = module.add_function(name)
    b = IRBuilder(fn)
    kit = Kit(b)
    b.block("entry")
    obj = module.globals[stats_obj_name]

    def emit(i):
        word = b.load(obj, i)
        b.call(external_name, [word], returns=False)

    kit.counted(min(obj.size, 8), emit, "emit")
    b.ret(0)


def add_service_function(
    module: Module,
    name: str = "service",
    tiers: Sequence[str] = ("never",),
    external_on: Optional[str] = None,
    external_name: Optional[str] = None,
) -> None:
    """Add a bookkeeping helper with statistically-cold side-effect paths.

    Real applications carry error handlers, reallocation slow paths, and
    periodic maintenance that execute on a small fraction of invocations
    — exactly the code Encore's Pmin pruning targets (paper Section
    3.4.1 and the try_swap example of Figure 2c).  ``service(req)``
    reproduces the three tiers:

    * ``never``    — an error path guarded by a condition that cannot
      fire (pruned at Pmin = 0.0);
    * ``rare``     — taken on ~1.6% of invocations (pruned at 0.1);
    * ``uncommon`` — taken on 20% of invocations (pruned at 0.25).

    Each tier performs a read-modify-write on a stats cell (a WAR that
    spoils idempotence while unpruned).  ``external_on`` optionally puts
    an opaque library call on one tier, producing the paper's *Unknown*
    classification until that tier is pruned away ("always" keeps the
    call on the hot path, so the region stays unknown at every Pmin).
    """
    for tier in tiers:
        if tier not in ("never", "rare", "uncommon"):
            raise ValueError(f"unknown tier {tier!r}")
    if external_on is not None and external_on not in tuple(tiers) + ("always",):
        raise ValueError(f"external_on={external_on!r} is not an active tier")

    stats = module.add_global(f"{name}_stats", 4)
    ext = external_name or f"{name}_syscall"
    if external_on is not None:
        module.declare_external(ext)
    fn = module.add_function(name, params=[VirtualRegister("req")])
    b = IRBuilder(fn)
    kit = Kit(b)
    b.block("entry")
    req = fn.params[0]

    def tier_body(cell: int, with_external: bool):
        def body():
            count = b.load(stats, cell)          # WAR on the stats cell
            b.store(stats, cell, b.add(count, 1))
            if with_external:
                b.call(ext, [req], returns=False)
        return body

    if "never" in tiers:
        sentinel = b.load(stats, 3)  # never written above 0
        kit.if_then(
            b.cmp("sgt", sentinel, 1_000_000),
            tier_body(0, external_on == "never"),
            "err",
        )
    if "rare" in tiers:
        kit.if_then(
            b.cmp("eq", b.and_(req, 63), 17),
            tier_body(1, external_on == "rare"),
            "rare",
        )
    if "uncommon" in tiers:
        kit.if_then(
            b.cmp("eq", b.srem(req, 5), 3),
            tier_body(2, external_on == "uncommon"),
            "uncommon",
        )
    if external_on == "always":
        b.call(ext, [req], returns=False)
    b.ret(0)
