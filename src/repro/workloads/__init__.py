"""The benchmark suite: 23 SPEC2000/Mediabench-like IR programs.

The registry mirrors the paper's evaluation set.  Each entry builds a
fresh module (workloads are mutated by instrumentation, so callers get
their own copy per ``build()`` call).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.workloads import mediabench, spec_fp, spec_int, threads
from repro.workloads.synth import BuiltWorkload, Kit, float_data, int_data, new_workload

SUITE_SPEC_INT = "SPEC2K-INT"
SUITE_SPEC_FP = "SPEC2K-FP"
SUITE_MEDIABENCH = "MEDIABENCH"
SUITE_THREADS = "THREADS"


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry for one benchmark."""

    name: str
    suite: str
    builder: Callable[[], BuiltWorkload]

    def build(self, variant: str = "train") -> BuiltWorkload:
        from repro.ir import verify_module
        from repro.workloads.synth import set_data_variant

        previous = set_data_variant(variant)
        try:
            built = self.builder()
        finally:
            set_data_variant(previous)
        assert built.name == self.name, (built.name, self.name)
        # A malformed CFG must fail here, at construction, not trials
        # deep into an SFI or fuzz campaign that happens to execute it.
        verify_module(built.module)
        return built


_REGISTRY: List[WorkloadSpec] = [
    WorkloadSpec("164.gzip", SUITE_SPEC_INT, spec_int.gzip),
    WorkloadSpec("175.vpr", SUITE_SPEC_INT, spec_int.vpr),
    WorkloadSpec("181.mcf", SUITE_SPEC_INT, spec_int.mcf),
    WorkloadSpec("197.parser", SUITE_SPEC_INT, spec_int.parser),
    WorkloadSpec("256.bzip2", SUITE_SPEC_INT, spec_int.bzip2),
    WorkloadSpec("300.twolf", SUITE_SPEC_INT, spec_int.twolf),
    WorkloadSpec("172.mgrid", SUITE_SPEC_FP, spec_fp.mgrid),
    WorkloadSpec("173.applu", SUITE_SPEC_FP, spec_fp.applu),
    WorkloadSpec("177.mesa", SUITE_SPEC_FP, spec_fp.mesa),
    WorkloadSpec("179.art", SUITE_SPEC_FP, spec_fp.art),
    WorkloadSpec("183.equake", SUITE_SPEC_FP, spec_fp.equake),
    WorkloadSpec("cjpeg", SUITE_MEDIABENCH, mediabench.cjpeg),
    WorkloadSpec("djpeg", SUITE_MEDIABENCH, mediabench.djpeg),
    WorkloadSpec("epic", SUITE_MEDIABENCH, mediabench.epic),
    WorkloadSpec("unepic", SUITE_MEDIABENCH, mediabench.unepic),
    WorkloadSpec("g721decode", SUITE_MEDIABENCH, mediabench.g721decode),
    WorkloadSpec("g721encode", SUITE_MEDIABENCH, mediabench.g721encode),
    WorkloadSpec("mpeg2dec", SUITE_MEDIABENCH, mediabench.mpeg2dec),
    WorkloadSpec("mpeg2enc", SUITE_MEDIABENCH, mediabench.mpeg2enc),
    WorkloadSpec("pegwitdec", SUITE_MEDIABENCH, mediabench.pegwitdec),
    WorkloadSpec("pegwitenc", SUITE_MEDIABENCH, mediabench.pegwitenc),
    WorkloadSpec("rawcaudio", SUITE_MEDIABENCH, mediabench.rawcaudio),
    WorkloadSpec("rawdaudio", SUITE_MEDIABENCH, mediabench.rawdaudio),
]

#: Multithreaded workloads live in their own registry: the paper's
#: single-threaded evaluation set (goldens, figure pipelines, profiles)
#: must not grow entries, and campaigns opt into threads explicitly.
_THREADED: List[WorkloadSpec] = [
    WorkloadSpec("pc_codec", SUITE_THREADS, threads.pc_codec),
    WorkloadSpec("stencil3", SUITE_THREADS, threads.stencil3),
    WorkloadSpec("serial_stencil", SUITE_THREADS, threads.serial_stencil),
]

_BY_NAME: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in _REGISTRY + _THREADED
}


def all_workloads() -> List[WorkloadSpec]:
    """Every benchmark, in the paper's presentation order."""
    return list(_REGISTRY)


def threaded_workloads() -> List[WorkloadSpec]:
    """The multithreaded (spawn/join) workloads — a separate suite."""
    return list(_THREADED)


def workloads_in_suite(suite: str) -> List[WorkloadSpec]:
    return [spec for spec in _REGISTRY if spec.suite == suite]


def get_workload(name: str) -> WorkloadSpec:
    return _BY_NAME[name]


def build_workload(name: str, variant: str = "train") -> BuiltWorkload:
    """Build a benchmark; ``variant`` selects the input data set
    ("train" is what profiles are gathered on; "ref" is unseen data)."""
    return _BY_NAME[name].build(variant)


def suites() -> List[str]:
    return [SUITE_SPEC_INT, SUITE_SPEC_FP, SUITE_MEDIABENCH]


__all__ = [
    "BuiltWorkload",
    "Kit",
    "SUITE_MEDIABENCH",
    "SUITE_SPEC_FP",
    "SUITE_SPEC_INT",
    "SUITE_THREADS",
    "WorkloadSpec",
    "all_workloads",
    "build_workload",
    "float_data",
    "get_workload",
    "int_data",
    "new_workload",
    "suites",
    "threaded_workloads",
    "workloads_in_suite",
]
