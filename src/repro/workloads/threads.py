"""Shared-memory multithreaded workloads.

Two programs exercise the cooperative scheduler's fault surface:

* ``pc_codec`` — a producer/consumer codec.  Main spawns a consumer
  thread, then encodes a byte stream into a shared buffer, publishing a
  progress counter after every item; the consumer busy-waits on the
  counter (bounded: the producer makes progress every quantum), decodes
  each item and folds it into a checksum.  The handshake cells are the
  interesting fault targets — a corrupted counter or buffer index is
  visible *across* threads.
* ``stencil3`` — a data-parallel 3-point stencil.  Main spawns two
  workers over disjoint halves of the grid, joins both, and checksums
  the output.  ``stencil_row`` is also run serially over the full range
  by ``serial_stencil`` (same module), which lets the benchmark harness
  assert serial/parallel result equality.

Both are pure shared-memory programs (no externals) and deterministic
under the cooperative round-robin scheduler for any quantum — which is
exactly the property the campaign machinery relies on.
"""

from __future__ import annotations

from repro.ir import IRBuilder, VirtualRegister
from repro.workloads.synth import BuiltWorkload, Kit, int_data, new_workload

PC_ITEMS = 96
STENCIL_N = 128


def pc_codec() -> BuiltWorkload:
    module, kit = new_workload("pc_codec")
    b = kit.b
    data = module.add_global("data", PC_ITEMS, init=int_data("pc_codec", PC_ITEMS))
    shared = module.add_global("shared", PC_ITEMS)
    # state[0] = items produced so far, state[1] = consumer checksum.
    state = module.add_global("state", 2)

    # -- consumer thread ------------------------------------------------
    consumer = module.add_function("consumer", params=[VirtualRegister("limit")])
    cb = IRBuilder(consumer)
    ckit = Kit(cb)
    cb.block("entry")
    limit = consumer.params[0]
    done = cb.fresh("done")
    cb.mov(0, done)

    def consume_one():
        def spin_cond():
            produced = cb.load(state, 0)
            return cb.cmp("sle", produced, done)

        # Busy-wait until the producer has published item ``done``.
        # Bounded: the producer runs every quantum and publishes one
        # item per handful of steps.
        ckit.while_loop(spin_cond, lambda: None, "spin")
        enc = cb.load(shared, done)
        # Decode: undo the producer's xor/shift mix.
        dec = cb.xor(cb.lshr(enc, 1), 21)
        ckit.checksum_into(state, 1, dec)
        cb.add(done, 1, done)

    def not_done():
        return cb.cmp("slt", done, limit)

    ckit.while_loop(not_done, consume_one, "drain")
    cb.ret(cb.load(state, 1))

    # -- main: spawn consumer, produce, join ----------------------------
    b.block("entry")
    tid = b.spawn("consumer", [PC_ITEMS])

    def produce(i):
        raw = b.load(data, i)
        enc = b.shl(b.xor(raw, 21), 1)
        b.store(shared, i, enc)
        count = b.add(i, 1)
        b.store(state, 0, count)

    kit.counted(PC_ITEMS, produce, "produce")
    consumed = b.join(tid)
    b.ret(consumed)

    return BuiltWorkload(
        name="pc_codec",
        module=module,
        output_objects=("shared", "state"),
    )


def _add_stencil_row(module) -> None:
    """``stencil_row(start, end)``: out[i] = g[i-1] + 2*g[i] + g[i+1]."""
    fn = module.add_function(
        "stencil_row", params=[VirtualRegister("start"), VirtualRegister("end")]
    )
    b = IRBuilder(fn)
    kit = Kit(b)
    b.block("entry")
    start, end = fn.params
    grid = module.globals["grid"]
    out = module.globals["out"]
    acc = b.fresh("acc")
    b.mov(0, acc)

    def body(i):
        left = b.load(grid, b.sub(i, 1))
        mid = b.load(grid, i)
        right = b.load(grid, b.add(i, 1))
        v = b.add(b.add(left, b.mul(mid, 2)), right)
        v = b.and_(v, (1 << 31) - 1)
        b.store(out, i, v)
        b.add(acc, v, acc)
        b.and_(acc, (1 << 31) - 1, acc)

    i = b.fresh("i")
    b.mov(start, i)

    def cond():
        return b.cmp("slt", i, end)

    def step():
        body(i)
        b.add(i, 1, i)

    kit.while_loop(cond, step, "row")
    b.ret(acc)


def stencil3() -> BuiltWorkload:
    module, kit = new_workload("stencil3")
    b = kit.b
    module.add_global("grid", STENCIL_N, init=int_data("stencil3", STENCIL_N))
    out = module.add_global("out", STENCIL_N)
    _add_stencil_row(module)

    half = STENCIL_N // 2
    b.block("entry")
    t1 = b.spawn("stencil_row", [1, half])
    t2 = b.spawn("stencil_row", [half, STENCIL_N - 1])
    r1 = b.join(t1)
    r2 = b.join(t2)
    total = b.add(r1, r2)
    total = b.and_(total, (1 << 31) - 1, dest=total)
    # Fold the output array too, so a fault that lands in either
    # worker's slice is visible in the return value.
    def fold(i):
        kit.checksum_into(out, 0, b.load(out, i))

    kit.counted(STENCIL_N - 1, fold, "fold", start=1)
    b.ret(b.add(total, b.load(out, 0)))

    return BuiltWorkload(
        name="stencil3",
        module=module,
        output_objects=("out",),
    )


def serial_stencil() -> BuiltWorkload:
    """The same stencil with ``stencil_row`` called, not spawned.

    Built from the same row routine over the full range, so (up to the
    spawn/join handshake) its ``out`` array must equal ``stencil3``'s —
    the serial/parallel equality check in ``benchmarks/bench_threads.py``.
    """
    module, kit = new_workload("serial_stencil")
    b = kit.b
    module.add_global("grid", STENCIL_N, init=int_data("stencil3", STENCIL_N))
    out = module.add_global("out", STENCIL_N)
    _add_stencil_row(module)

    b.block("entry")
    total = b.call("stencil_row", [1, STENCIL_N - 1])
    total = b.and_(total, (1 << 31) - 1, dest=total)

    def fold(i):
        kit.checksum_into(out, 0, b.load(out, i))

    kit.counted(STENCIL_N - 1, fold, "fold", start=1)
    b.ret(b.add(total, b.load(out, 0)))

    return BuiltWorkload(
        name="serial_stencil",
        module=module,
        output_objects=("out",),
    )
