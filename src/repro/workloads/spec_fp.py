"""SPEC2000-floating-point-like workloads.

The FP codes stream through arrays with separate read and write sets —
the memory behaviour behind the paper's observation that SPEC2K-FP (and
media) applications spend far more runtime in idempotent regions than
the integer codes.  The few WARs that remain sit in reduction cells and
in-place relaxation sweeps.
"""

from __future__ import annotations

from repro.workloads.synth import (
    BuiltWorkload,
    Kit,
    add_report_function,
    add_service_function,
    float_data,
    indirect_handle,
    int_data,
    new_workload,
)


def mgrid() -> BuiltWorkload:
    """172.mgrid: multigrid V-cycles of a 1-D Poisson smoother.

    Every kernel (smooth, restrict, prolongate) reads one array and
    writes another: the whole hot region is inherently idempotent,
    matching mgrid's near-perfect coverage in the paper.
    """
    module, kit = new_workload("172.mgrid")
    b = kit.b
    n = 66
    fine = module.add_global("fine", n, init=float_data("mgrid.f", n))
    fine2 = module.add_global("fine2", n)
    coarse = module.add_global("coarse", n // 2 + 1)
    resid = module.add_global("residual", 1)
    b.block("entry")

    def vcycle(cycle):
        def smooth(i):
            left = b.load(fine, b.sub(i, 1))
            mid = b.load(fine, i)
            right = b.load(fine, b.add(i, 1))
            acc = b.fadd(left, right)
            acc = b.fadd(acc, b.fmul(mid, 2.0))
            b.store(fine2, i, b.fmul(acc, 0.25))

        kit.counted(n - 1, smooth, "smooth", start=1)

        def restrict(i):
            src = b.shl(i, 1)
            a = b.load(fine2, src)
            c = b.load(fine2, b.add(src, 1))
            b.store(coarse, i, b.fmul(b.fadd(a, c), 0.5))

        kit.counted(n // 2, restrict, "restrict")

        def prolongate(i):
            half = b.lshr(i, 1)
            v = b.load(coarse, half)
            b.store(fine, i, v)  # writes fine, reads coarse: idempotent

        kit.counted(n, prolongate, "prolong")

    kit.counted(8, vcycle, "vcycle")
    # One residual reduction at the end (register accumulator).
    total = b.mov(0.0)

    def reduce(i):
        v = b.load(fine, i)
        b.fadd(total, b.fmul(v, v), total)

    kit.counted(n, reduce, "reduce")
    b.store(resid, 0, total)
    b.ret(b.unop("fptosi", total))
    return BuiltWorkload("172.mgrid", module, (), ("fine", "coarse", "residual"))


def applu() -> BuiltWorkload:
    """173.applu: SSOR-style lower/upper sweeps over a grid.

    Sweeps write a fresh array per direction (idempotent); the
    convergence check accumulates into a norm cell (a WAR the compiler
    must checkpoint).
    """
    module, kit = new_workload("173.applu")
    add_service_function(module, tiers=("never",), external_on="never")
    b = kit.b
    n = 64
    u = module.add_global("u", n, init=float_data("applu.u", n))
    rhs = module.add_global("rhs", n, init=float_data("applu.r", n))
    lower = module.add_global("lower", n)
    upper = module.add_global("upper", n)
    norm = module.add_global("norm", 1)
    b.block("entry")

    def ssor_iteration(it):
        def lower_sweep(i):
            prev = b.load(u, b.binop("max", b.sub(i, 1), 0))
            cur = b.load(u, i)
            f = b.load(rhs, i)
            v = b.fadd(b.fmul(prev, 0.3), b.fmul(cur, 0.5))
            b.store(lower, i, b.fadd(v, f))

        kit.counted(n, lower_sweep, "lsweep")

        def upper_sweep(i):
            idx = b.sub(n - 1, i)
            nxt = b.load(lower, b.binop("min", b.add(idx, 1), n - 1))
            cur = b.load(lower, idx)
            b.store(upper, idx, b.fadd(b.fmul(nxt, 0.3), b.fmul(cur, 0.6)))

        kit.counted(n, upper_sweep, "usweep")

        def commit(i):
            b.store(u, i, b.load(upper, i))

        kit.counted(n, commit, "commit")

        # Norm accumulation: load-modify-store on a single cell.
        cur = b.load(norm, 0)
        sample = b.load(u, b.and_(it, n - 1))
        b.store(norm, 0, b.fadd(cur, b.unop("fabs", sample)))
        b.call("service", [it], returns=False)

    kit.counted(10, ssor_iteration, "ssor")
    result = b.load(norm, 0)
    b.ret(b.unop("fptosi", result))
    return BuiltWorkload("173.applu", module, (), ("u", "norm"))


def mesa() -> BuiltWorkload:
    """177.mesa: transform + rasterize with a depth-buffered framebuffer.

    Vertex transform writes fresh arrays; the pixel loop's z-test is a
    conditional WAR on the depth buffer (read z, maybe overwrite z and
    color) — mesa is the benchmark the paper notes could not reach its
    overhead target without losing coverage.
    """
    module, kit = new_workload("177.mesa")
    add_service_function(module, tiers=("never", "rare"), external_on="never")
    b = kit.b
    verts = 48
    width = 32
    vx = module.add_global("vx", verts, init=float_data("mesa.x", verts, 0.0, 31.0))
    vz = module.add_global("vz", verts, init=float_data("mesa.z", verts, 0.1, 9.9))
    tx = module.add_global("tx", verts)
    zbuf = module.add_global("zbuf", width, init=[100.0] * width)
    color = module.add_global("color", width)
    b.block("entry")
    color_handle = indirect_handle(kit, module, color, "color_desc")

    def transform(i):
        x = b.load(vx, i)
        z = b.load(vz, i)
        # Perspective divide and viewport scale (registers only).
        projected = b.fdiv(b.fmul(x, 16.0), b.fadd(z, 1.0))
        b.store(tx, i, projected)

    kit.counted(verts, transform, "xform")

    def rasterize(i):
        px = b.load(tx, i)
        col = b.unop("fptosi", px)
        col = kit.clamp(col, 0, width - 1)
        z = b.load(vz, i)
        old = b.load(zbuf, col)  # depth test: read ...

        def write_pixel():
            b.store(zbuf, col, z)        # ... conditionally overwrite: WAR
            b.store(color_handle, col, b.fmul(z, 8.0))

        kit.if_then(b.cmp("flt", z, old), write_pixel, "ztest")
        b.call("service", [i], returns=False)

    def frame(f):
        kit.counted(verts, rasterize, "raster")

    kit.counted(6, frame, "frames")
    add_report_function(module, "color", external_name="gl_flush")
    b.call("report", [], returns=False)
    b.ret(0)
    return BuiltWorkload("177.mesa", module, (), ("zbuf", "color"))


def art() -> BuiltWorkload:
    """179.art: adaptive-resonance network match/learn phases.

    The match phase is a read-only weights scan writing activations
    (idempotent); the rarer learn phase updates the winner's weights in
    place (WARs on a slice of the weight matrix).
    """
    module, kit = new_workload("179.art")
    add_service_function(module, tiers=("never",))
    b = kit.b
    f1, f2 = 24, 12
    weights = module.add_global(
        "weights", f1 * f2, init=float_data("art.w", f1 * f2, 0.0, 1.0)
    )
    inputs = module.add_global("inputs", f1, init=float_data("art.in", f1, 0.0, 1.0))
    act = module.add_global("act", f2)
    winner_cell = module.add_global("winner", 1)
    b.block("entry")

    def present(pattern):
        def score(jnode):
            total = b.mov(0.0)

            def dot(i):
                w = b.load(weights, b.add(b.mul(jnode, f1), i))
                x = b.load(inputs, i)
                b.fadd(total, b.fmul(w, x), total)

            kit.counted(f1, dot, "dot")
            b.store(act, jnode, total)

        kit.counted(f2, score, "score")

        # Winner search: register-only max scan, then memory commit.
        best = b.mov(0)
        best_val = b.mov(-1.0)

        def find(jnode):
            v = b.load(act, jnode)
            better = b.cmp("fgt", v, best_val)
            b.select(better, jnode, best, dest=best)
            b.select(better, v, best_val, dest=best_val)

        kit.counted(f2, find, "winner")
        b.store(winner_cell, 0, best)

        def learn():
            def update(i):
                idx = b.add(b.mul(best, f1), i)
                w = b.load(weights, idx)       # WAR: weight read ...
                x = b.load(inputs, i)
                blended = b.fadd(b.fmul(w, 0.9), b.fmul(x, 0.1))
                b.store(weights, idx, blended)  # ... then overwritten
            kit.counted(f1, update, "learn")

        # Learning happens on a minority of presentations (cold-ish path).
        kit.if_then(b.cmp("eq", b.and_(pattern, 7), 0), learn, "resonate")
        b.call("service", [pattern], returns=False)

    kit.counted(24, present, "present")
    b.ret(b.load(winner_cell, 0))
    return BuiltWorkload("179.art", module, (), ("act", "weights", "winner"))


def equake() -> BuiltWorkload:
    """183.equake: sparse matrix-vector products in a time loop.

    The CSR sweep reads the matrix and x and writes y (idempotent); the
    time integrator copies y back into x through a fresh commit loop and
    accumulates energy into a single cell (the lone WAR).
    """
    module, kit = new_workload("183.equake")
    add_service_function(module, tiers=("never", "rare"))
    b = kit.b
    n = 40
    nnz_per_row = 4
    nnz = n * nnz_per_row
    cols = module.add_global("cols", nnz, init=int_data("equake.c", nnz, 0, n - 1))
    vals = module.add_global(
        "vals", nnz, init=float_data("equake.v", nnz, -1.0, 1.0)
    )
    x = module.add_global("x", n, init=float_data("equake.x", n))
    y = module.add_global("y", n)
    energy = module.add_global("energy", 1)
    b.block("entry")

    def timestep(t):
        def row(i):
            total = b.mov(0.0)

            def term(k):
                idx = b.add(b.mul(i, nnz_per_row), k)
                j = b.load(cols, idx)
                a = b.load(vals, idx)
                xv = b.load(x, j)
                b.fadd(total, b.fmul(a, xv), total)

            kit.counted(nnz_per_row, term, "nz")
            b.store(y, i, total)

        kit.counted(n, row, "rows")

        def commit(i):
            yv = b.load(y, i)
            b.store(x, i, b.fmul(yv, 0.99))  # x read only in the sweep above

        kit.counted(n, commit, "commit")
        e = b.load(energy, 0)              # WAR on the energy cell
        sample = b.load(x, b.and_(t, n - 1))
        b.store(energy, 0, b.fadd(e, b.unop("fabs", sample)))
        b.call("service", [t], returns=False)

    kit.counted(12, timestep, "time")
    add_report_function(module, "energy")
    b.call("report", [], returns=False)
    b.ret(b.unop("fptosi", b.load(energy, 0)))
    return BuiltWorkload("183.equake", module, (), ("x", "energy"))
