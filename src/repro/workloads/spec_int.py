"""SPEC2000-integer-like workloads.

Each program mirrors the control-flow and memory-access character of its
namesake benchmark — the properties that drive Encore's results: WAR
density, hot-path skew, loop nesting, init-once cold paths, and pointer
indirection.  Inputs are deterministic pseudo-random data seeded by the
workload name, so every run (profiling, SFI golden, experiments) sees
identical behaviour.
"""

from __future__ import annotations

from repro.ir import IRBuilder, VirtualRegister
from repro.workloads.synth import (
    BuiltWorkload,
    Kit,
    add_report_function,
    add_service_function,
    indirect_handle,
    int_data,
    new_workload,
)

INPUT = 256  # shared base input size keeps runtimes balanced


def gzip() -> BuiltWorkload:
    """164.gzip: LZ77-style compressor.

    Hash-chain insertion is a load-then-store WAR on the head table; the
    match-scan inner loop is read-only; literal/match emission writes an
    output stream (idempotent).
    """
    module, kit = new_workload("164.gzip")
    add_service_function(module, tiers=("never", "rare"), external_on="never")
    b = kit.b
    inp = module.add_global("input", INPUT, init=int_data("gzip.in", INPUT, 0, 63))
    heads = module.add_global("hash_head", 64, init=[-1] * 64)
    out = module.add_global("out", INPUT * 2)
    chk = module.add_global("checksum", 1)
    b.block("entry")
    out_handle = indirect_handle(kit, module, out, "out_desc")
    out_pos = b.fresh("outpos")
    b.mov(0, out_pos)

    def compress_position(i):
        sym = b.load(inp, i)
        nxt_i = b.add(i, 1)
        in_range = b.cmp("slt", nxt_i, INPUT)
        nxt = b.select(in_range, b.load(inp, kit.clamp(nxt_i, 0, INPUT - 1)), 0)
        h = b.and_(b.xor(b.mul(sym, 5), nxt), 63)
        prev = b.load(heads, h)      # read the chain head ...
        b.store(heads, h, i)         # ... then overwrite it: WAR

        def emit_match():
            # Scan backwards from prev for a match run (read-only).
            length = b.fresh("mlen")
            b.mov(0, length)
            j = b.fresh("j")
            b.mov(prev, j)

            window_floor = b.binop("max", b.sub(prev, 16), 0)

            def still_matching():
                in_bounds = b.cmp("sge", j, window_floor)
                short = b.cmp("slt", length, 8)
                return b.and_(in_bounds, short)

            def scan():
                a = b.load(inp, kit.clamp(j, 0, INPUT - 1))
                same = b.cmp("eq", a, sym)
                b.add(length, same, length)
                b.sub(j, 1, j)

            kit.while_loop(still_matching, scan, "match")
            token = b.or_(b.shl(length, 8), sym)
            b.store(out_handle, out_pos, token)
            b.add(out_pos, 1, out_pos)

        def emit_literal():
            b.store(out_handle, out_pos, sym)
            b.add(out_pos, 1, out_pos)

        found = b.cmp("sge", prev, 0)
        kit.if_else(found, emit_match, emit_literal, "emit")
        kit.checksum_into(chk, 0, sym)
        b.call("service", [i], returns=False)

    kit.counted(INPUT, compress_position, "pos")
    add_report_function(module, "checksum")
    b.call("report", [], returns=False)
    b.ret(b.load(chk, 0))
    return BuiltWorkload("164.gzip", module, (), ("out", "checksum", "hash_head"))


def vpr() -> BuiltWorkload:
    """175.vpr: placement by simulated annealing (the try_swap pattern).

    ``try_swap`` allocates its scratch buffers the first time it is
    called (paper Figure 2c: the shaded cold blocks); afterwards the hot
    path reads the placement, evaluates a swap with the LCG (a WAR on
    the PRNG cell), and conditionally commits it (WARs on the placement
    array and the cost cell).
    """
    module, kit0 = new_workload("175.vpr")
    add_service_function(module, tiers=("never", "uncommon"), external_on="never")
    cells = 64
    place = module.add_global(
        "placement", cells, init=list(range(cells))
    )
    cost_cell = module.add_global("cost", 1, init=[1000])
    rng_state = module.add_global("rng", 1, init=[12345])
    init_flag = module.add_global("init_done", 1)
    scratch_ptr = module.add_global("scratch_ptr", 1)
    chk = module.add_global("checksum", 1)

    # -- try_swap ---------------------------------------------------------
    swap_fn = module.add_function("try_swap", params=[VirtualRegister("trial")])
    sb = IRBuilder(swap_fn)
    kit = Kit(sb)
    sb.block("entry")
    done = sb.load(init_flag, 0)

    def cold_init():
        # Executed exactly once: the statistically-dead path.
        p = sb.alloc(cells)
        sb.store(scratch_ptr, 0, 1)  # mark the handle live
        kit.counted(cells, lambda i: sb.store(p, i, 0), "scratchinit")
        sb.store(init_flag, 0, 1)

    kit.if_then(sb.cmp("eq", done, 0), cold_init, "coldinit")

    r1 = kit.lcg(rng_state)
    a = sb.and_(r1, cells - 1)
    r2 = kit.lcg(rng_state)
    c = sb.and_(r2, cells - 1)
    pa = sb.load(place, a)
    pc = sb.load(place, c)
    # Delta cost: how far each cell moves (reads only).
    delta = sb.sub(pa, pc)
    delta = sb.mul(delta, sb.sub(a, c))

    def accept():
        sb.store(place, a, pc)  # WAR: placement read above, written here
        sb.store(place, c, pa)
        cur = sb.load(cost_cell, 0)
        sb.store(cost_cell, 0, sb.add(cur, delta))

    kit.if_then(sb.cmp("slt", delta, 0), accept, "accept")
    sb.call("service", [swap_fn.params[0]], returns=False)
    kit.checksum_into(chk, 0, sb.add(pa, pc))
    sb.ret(delta)

    # -- main -------------------------------------------------------------------
    b = kit0.b
    b.block("entry")
    kit0.counted(300, lambda t: b.call("try_swap", [t]), "anneal")
    b.ret(b.load(cost_cell, 0))
    return BuiltWorkload(
        "175.vpr", module, (), ("placement", "cost", "checksum")
    )


def mcf() -> BuiltWorkload:
    """181.mcf: network-simplex flavored pointer chasing.

    Arc scans read node potentials through data-dependent indices; the
    price-update pass is a WAR on the potential array; flow commits
    write a separate array (idempotent).
    """
    module, kit = new_workload("181.mcf")
    add_service_function(module, tiers=("never", "rare"))
    b = kit.b
    nodes, arcs = 48, 160
    arc_tail = module.add_global("arc_tail", arcs, init=int_data("mcf.t", arcs, 0, nodes - 1))
    arc_head = module.add_global("arc_head", arcs, init=int_data("mcf.h", arcs, 0, nodes - 1))
    arc_cost = module.add_global("arc_cost", arcs, init=int_data("mcf.c", arcs, 1, 99))
    potential = module.add_global("potential", nodes, init=int_data("mcf.p", nodes, 0, 499))
    flow = module.add_global("flow", arcs)
    objective = module.add_global("objective", 1)
    b.block("entry")
    flow_handle = indirect_handle(kit, module, flow, "flow_desc")

    def simplex_iteration(round_):
        def scan_arc(j):
            t = b.load(arc_tail, j)
            h = b.load(arc_head, j)
            cost = b.load(arc_cost, j)
            pt = b.load(potential, t)     # data-dependent index loads
            ph = b.load(potential, h)
            reduced = b.add(b.sub(cost, pt), ph)
            # Admissibility scoring: degree estimates and a capacity
            # heuristic (register arithmetic, as in the real pricing loop).
            cur_flow = b.load(flow, j)
            residual = b.sub(99, cur_flow)
            score = b.mul(reduced, residual)
            score = b.binop("ashr", score, 3)
            spread = b.sub(pt, ph)
            spread = b.binop("max", spread, b.sub(ph, pt))
            score = b.add(score, spread)
            penalty = b.and_(b.mul(t, 7), 15)
            score = b.sub(score, penalty)
            admissible = b.and_(
                b.cmp("slt", reduced, 0), b.cmp("sgt", residual, 0)
            )

            def pivot():
                b.store(flow_handle, j, round_)   # commit via struct field
                cur = b.load(potential, t)        # WAR on potentials
                b.store(potential, t, b.add(cur, 1))
                obj = b.load(objective, 0)        # WAR on the objective
                b.store(objective, 0, b.add(obj, score))

            kit.if_then(admissible, pivot, "pivot")
            b.call("service", [j], returns=False)

        kit.counted(arcs, scan_arc, "arcs")

    kit.counted(12, simplex_iteration, "rounds")
    add_report_function(module, "objective")
    b.call("report", [], returns=False)
    b.ret(b.load(objective, 0))
    return BuiltWorkload("181.mcf", module, (), ("flow", "potential", "objective"))


def parser() -> BuiltWorkload:
    """197.parser: dictionary lookups plus an explicit parse stack.

    Binary search is read-only; stack pushes/pops are WARs on the
    stack-pointer cell; the token classifier is a control-heavy if/else
    chain (many small basic blocks).
    """
    module, kit = new_workload("197.parser")
    add_service_function(module, tiers=("never", "uncommon"), external_on="never")
    b = kit.b
    dict_size = 64
    sorted_dict = module.add_global(
        "dictionary", dict_size, init=sorted(int_data("parser.d", dict_size, 0, 999))
    )
    text = module.add_global("text", INPUT, init=int_data("parser.t", INPUT, 0, 999))
    stack = module.add_global("stack", 64)
    sp_cell = module.add_global("sp", 1)
    counts = module.add_global("counts", 4)
    b.block("entry")
    stack_handle = indirect_handle(kit, module, stack, "stack_desc")

    def parse_token(i):
        tok = b.load(text, i)
        # Binary search (read-only inner loop).
        lo = b.fresh("lo")
        hi = b.fresh("hi")
        found = b.fresh("found")
        b.mov(0, lo)
        b.mov(dict_size - 1, hi)
        b.mov(0, found)

        def searching():
            return b.cmp("sle", lo, hi)

        def probe():
            mid = b.lshr(b.add(lo, hi), 1)
            entry = b.load(sorted_dict, mid)

            def go_low():
                b.mov(b.sub(mid, 1), hi)

            def go_high_or_hit():
                def hit():
                    b.mov(1, found)
                    b.mov(b.add(hi, 1), lo)  # terminate search

                def go_high():
                    b.mov(b.add(mid, 1), lo)

                kit.if_else(b.cmp("eq", entry, tok), hit, go_high, "hit")

            kit.if_else(b.cmp("sgt", entry, tok), go_low, go_high_or_hit, "cmp")

        kit.while_loop(searching, probe, "bsearch")

        def push():
            sp = b.load(sp_cell, 0)            # WAR on the stack pointer
            bounded = kit.clamp(sp, 0, 63)
            b.store(stack_handle, bounded, tok)
            b.store(sp_cell, 0, kit.clamp(b.add(sp, 1), 0, 63))
            cur = b.load(counts, 0)
            b.store(counts, 0, b.add(cur, 1))

        def reduce():
            sp = b.load(sp_cell, 0)
            b.store(sp_cell, 0, kit.clamp(b.sub(sp, 1), 0, 63))
            cur = b.load(counts, 1)
            b.store(counts, 1, b.add(cur, 1))

        kit.if_else(found, push, reduce, "action")
        b.call("service", [tok], returns=False)
        parity = b.and_(tok, 1)
        kit.if_else(
            parity,
            lambda: kit.checksum_into(counts, 2, tok),
            lambda: kit.checksum_into(counts, 3, tok),
            "classify",
        )

    kit.counted(INPUT, parse_token, "tokens")
    add_report_function(module, "counts")
    b.call("report", [], returns=False)
    b.ret(b.load(counts, 0))
    return BuiltWorkload("197.parser", module, (), ("counts", "sp", "stack"))


def bzip2() -> BuiltWorkload:
    """256.bzip2: histogram counting sort (BWT front-end flavor).

    Frequency counting and the in-place prefix sum are dense WARs on a
    small table; the permutation write-out does load-use-increment on
    the same table (more WARs) while writing the output idempotently.
    """
    module, kit = new_workload("256.bzip2")
    add_service_function(module, tiers=("never",))
    b = kit.b
    syms = 32
    inp = module.add_global("input", INPUT, init=int_data("bzip2.in", INPUT, 0, syms - 1))
    freq = module.add_global("freq", syms)
    out = module.add_global("out", INPUT)
    chk = module.add_global("checksum", 1)
    b.block("entry")
    out_handle = indirect_handle(kit, module, out, "out_desc")

    def count(i):
        sym = b.load(inp, i)
        cur = b.load(freq, sym)       # WAR: freq read ...
        b.store(freq, sym, b.add(cur, 1))
        b.call("service", [i], returns=False)  # ... then written

    kit.counted(INPUT, count, "count")

    run = b.fresh("running")
    b.mov(0, run)

    def prefix(sidx):
        cnt = b.load(freq, sidx)
        b.store(freq, sidx, run)      # in-place prefix sum: WAR
        b.add(run, cnt, run)

    kit.counted(syms, prefix, "prefix")

    def scatter(i):
        sym = b.load(inp, i)
        pos = b.load(freq, sym)       # WAR: slot read ...
        b.store(out_handle, kit.clamp(pos, 0, INPUT - 1), sym)
        b.store(freq, sym, b.add(pos, 1))  # ... then bumped
        kit.checksum_into(chk, 0, pos)

    kit.counted(INPUT, scatter, "scatter")
    b.ret(b.load(chk, 0))
    return BuiltWorkload("256.bzip2", module, (), ("out", "freq", "checksum"))


def twolf() -> BuiltWorkload:
    """300.twolf: standard-cell annealing (accept/reject structure).

    Like vpr but without the malloc cold path: wirelength evaluation
    reads the pin tables, the Metropolis test consults the LCG (WAR),
    and accepted moves update positions and the cost cell (WARs).
    """
    module, kit = new_workload("300.twolf")
    add_service_function(module, tiers=("never", "rare", "uncommon"))
    b = kit.b
    cells = 48
    xs = module.add_global("cell_x", cells, init=int_data("twolf.x", cells, 0, 127))
    ys = module.add_global("cell_y", cells, init=int_data("twolf.y", cells, 0, 127))
    nets = module.add_global("nets", cells, init=int_data("twolf.n", cells, 0, cells - 1))
    rng_state = module.add_global("rng", 1, init=[777])
    wirelen = module.add_global("wirelen", 1, init=[5000])
    chk = module.add_global("checksum", 1)
    b.block("entry")

    def attempt(trial):
        r = kit.lcg(rng_state)
        cell = b.and_(r, cells - 1)
        peer = b.load(nets, cell)
        x1 = b.load(xs, cell)
        y1 = b.load(ys, cell)
        x2 = b.load(xs, peer)
        y2 = b.load(ys, peer)
        dx = b.sub(x1, x2)
        dx = b.binop("max", dx, b.sub(x2, x1))
        dy = b.sub(y1, y2)
        dy = b.binop("max", dy, b.sub(y2, y1))
        halfp = b.add(dx, dy)
        # Half-perimeter wirelength over the cell's fanout (read-only
        # inner scan, like the real new_dbox cost evaluation).
        wl = b.mov(0)

        def fanout(k):
            other = b.load(nets, b.and_(b.add(cell, k), cells - 1))
            ox = b.load(xs, other)
            d = b.sub(x1, ox)
            d = b.binop("max", d, b.sub(ox, x1))
            b.add(wl, d, wl)

        kit.counted(4, fanout, "fanout")
        halfp = b.add(halfp, b.binop("ashr", wl, 2))

        def accept():
            nx = b.and_(b.add(x1, b.lshr(r, 8)), 127)
            b.store(xs, cell, nx)                 # WAR on positions
            cur = b.load(wirelen, 0)
            b.store(wirelen, 0, b.sub(cur, 1))    # WAR on the cost cell

        def reject():
            kit.checksum_into(chk, 0, halfp)

        threshold = b.and_(b.lshr(r, 4), 63)
        kit.if_else(b.cmp("sgt", halfp, threshold), accept, reject, "metro")
        b.call("service", [trial], returns=False)

    kit.counted(400, attempt, "anneal")
    b.ret(b.load(wirelen, 0))
    return BuiltWorkload("300.twolf", module, (), ("cell_x", "wirelen", "checksum"))
