"""Mediabench-like workloads.

Media kernels stream blocks of data through transform pipelines with
separate input/output buffers — the friendliest possible structure for
idempotence — with compact predictor/cipher state cells providing small,
cheap-to-checkpoint WARs (the pattern behind the paper's near-total
coverage on mpeg2dec and rawcaudio).
"""

from __future__ import annotations

from repro.workloads.synth import (
    BuiltWorkload,
    Kit,
    add_report_function,
    add_service_function,
    float_data,
    indirect_handle,
    int_data,
    new_workload,
)

_STEP_SIZES = [7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31]


def cjpeg() -> BuiltWorkload:
    """cjpeg: blocked forward DCT, quantization, and symbol histogram."""
    module, kit = new_workload("cjpeg")
    add_service_function(module, tiers=("never", "uncommon"))
    b = kit.b
    blocks, bsize = 12, 16
    n = blocks * bsize
    img = module.add_global("image", n, init=int_data("cjpeg.img", n, 0, 255))
    qtable = module.add_global("qtable", bsize, init=[(i % 8) + 4 for i in range(bsize)])
    coeff = module.add_global("coeff", n)
    hist = module.add_global("hist", 32)
    b.block("entry")
    coeff_handle = indirect_handle(kit, module, coeff, "coeff_desc")

    def encode_block(blk):
        base = b.mul(blk, bsize)

        def fdct(k):
            # Toy 2-point butterflies standing in for the 8x8 DCT.
            idx = b.add(base, k)
            partner = b.add(base, b.xor(k, 1))
            a = b.load(img, idx)
            c = b.load(img, partner)
            even = b.add(a, c)
            odd = b.sub(a, c)
            mixed = b.select(b.and_(k, 1), odd, even)
            q = b.load(qtable, k)
            b.store(coeff_handle, idx, b.sdiv(mixed, q))

        kit.counted(bsize, fdct, "fdct")

        def entropy(k):
            v = b.load(coeff, b.add(base, k))
            mag = b.binop("max", v, b.sub(0, v))
            bucket = b.and_(mag, 31)
            cnt = b.load(hist, bucket)        # histogram WAR
            b.store(hist, bucket, b.add(cnt, 1))

        kit.counted(bsize, entropy, "entropy")
        b.call("service", [blk], returns=False)

    kit.counted(blocks, encode_block, "blocks")
    b.ret(b.load(hist, 0))
    return BuiltWorkload("cjpeg", module, (), ("coeff", "hist"))


def djpeg() -> BuiltWorkload:
    """djpeg: dequantize + inverse transform into a fresh pixel buffer."""
    module, kit = new_workload("djpeg")
    b = kit.b
    blocks, bsize = 12, 16
    n = blocks * bsize
    coeff = module.add_global("coeff", n, init=int_data("djpeg.c", n, -64, 63))
    qtable = module.add_global("qtable", bsize, init=[(i % 8) + 4 for i in range(bsize)])
    pixels = module.add_global("pixels", n)
    b.block("entry")

    def decode_block(blk):
        base = b.mul(blk, bsize)

        def idct(k):
            idx = b.add(base, k)
            v = b.load(coeff, idx)
            q = b.load(qtable, k)
            raw = b.mul(v, q)
            partner = b.load(coeff, b.add(base, b.xor(k, 1)))
            raw = b.add(raw, b.lshr(partner, 1))
            b.store(pixels, idx, kit.clamp(b.add(raw, 128), 0, 255))

        kit.counted(bsize, idct, "idct")

    kit.counted(blocks, decode_block, "blocks")
    b.ret(b.load(pixels, 0))
    return BuiltWorkload("djpeg", module, (), ("pixels",))


def epic() -> BuiltWorkload:
    """epic: wavelet pyramid decomposition with per-level output arrays."""
    module, kit = new_workload("epic")
    b = kit.b
    n = 128
    img = module.add_global("image", n, init=int_data("epic.img", n, 0, 255))
    low = module.add_global("low", n // 2)
    high = module.add_global("high", n // 2)
    low2 = module.add_global("low2", n // 4)
    high2 = module.add_global("high2", n // 4)
    quant = module.add_global("quantized", n // 2)
    b.block("entry")

    def level1(i):
        a = b.load(img, b.shl(i, 1))
        c = b.load(img, b.add(b.shl(i, 1), 1))
        b.store(low, i, b.lshr(b.add(a, c), 1))
        b.store(high, i, b.sub(a, c))

    kit.counted(n // 2, level1, "level1")

    def level2(i):
        a = b.load(low, b.shl(i, 1))
        c = b.load(low, b.add(b.shl(i, 1), 1))
        b.store(low2, i, b.lshr(b.add(a, c), 1))
        b.store(high2, i, b.sub(a, c))

    kit.counted(n // 4, level2, "level2")

    def quantize(i):
        v = b.load(high, i)
        b.store(quant, i, b.binop("ashr", v, 2))

    kit.counted(n // 2, quantize, "quant")
    b.ret(b.load(low2, 0))
    return BuiltWorkload("epic", module, (), ("low2", "high2", "quantized"))


def unepic() -> BuiltWorkload:
    """unepic: inverse wavelet reconstruction (pure scatter, idempotent)."""
    module, kit = new_workload("unepic")
    add_service_function(module, tiers=("never",))
    b = kit.b
    n = 128
    low = module.add_global("low", n // 2, init=int_data("unepic.l", n // 2, 0, 255))
    high = module.add_global("high", n // 2, init=int_data("unepic.h", n // 2, -32, 31))
    img = module.add_global("image", n)
    chk = module.add_global("checksum", 1)
    b.block("entry")
    img_handle = indirect_handle(kit, module, img, "img_desc")

    def reconstruct(i):
        lo = b.load(low, i)
        hi = b.load(high, i)
        a = b.add(lo, b.binop("ashr", hi, 1))
        c = b.sub(a, hi)
        b.store(img_handle, b.shl(i, 1), kit.clamp(a, 0, 255))
        b.store(img_handle, b.add(b.shl(i, 1), 1), kit.clamp(c, 0, 255))
        kit.checksum_into(chk, 0, a)
        b.call("service", [i], returns=False)

    kit.counted(n // 2, reconstruct, "recon")
    b.ret(b.load(chk, 0))
    return BuiltWorkload("unepic", module, (), ("image", "checksum"))


def _adpcm_tables(module):
    module.add_global("step_table", 16, init=list(_STEP_SIZES))


def g721encode() -> BuiltWorkload:
    """g721encode: ADPCM encoder with predictor state in memory.

    The per-sample predictor update (read valprev/index, write them
    back) is the classic small fixed-address WAR that Encore checkpoints
    for a couple of stores per region.
    """
    module, kit = new_workload("g721encode")
    add_service_function(module, tiers=("never",))
    b = kit.b
    n = 192
    _adpcm_tables(module)
    steps = module.globals["step_table"]
    pcm = module.add_global("pcm", n, init=int_data("g721.pcm", n, -2048, 2047))
    codes = module.add_global("codes", n)
    state = module.add_global("state", 2)  # [valprev, index]
    b.block("entry")
    codes_handle = indirect_handle(kit, module, codes, "codes_desc")

    def encode_sample(i):
        sample = b.load(pcm, i)
        valprev = b.load(state, 0)          # predictor state: read ...
        index = b.load(state, 1)
        step = b.load(steps, kit.clamp(index, 0, 15))
        diff = b.sub(sample, valprev)
        sign = b.cmp("slt", diff, 0)
        mag = b.select(sign, b.sub(0, diff), diff)
        code = kit.clamp(b.sdiv(mag, b.binop("max", step, 1)), 0, 7)
        delta = b.mul(code, step)
        signed_delta = b.select(sign, b.sub(0, delta), delta)
        newval = kit.clamp(b.add(valprev, signed_delta), -2048, 2047)
        newidx = kit.clamp(b.add(index, b.sub(code, 2)), 0, 15)
        b.store(state, 0, newval)           # ... then overwritten: WARs
        b.store(state, 1, newidx)
        packed = b.or_(b.shl(sign, 3), code)
        b.store(codes_handle, i, packed)    # output stream via struct field
        b.call("service", [i], returns=False)

    kit.counted(n, encode_sample, "samples")
    b.ret(b.load(state, 0))
    return BuiltWorkload("g721encode", module, (), ("codes", "state"))


def g721decode() -> BuiltWorkload:
    """g721decode: the matching ADPCM decoder (same state WAR shape)."""
    module, kit = new_workload("g721decode")
    add_service_function(module, tiers=("never",))
    b = kit.b
    n = 192
    _adpcm_tables(module)
    steps = module.globals["step_table"]
    codes = module.add_global("codes", n, init=int_data("g721.codes", n, 0, 15))
    pcm = module.add_global("pcm", n)
    state = module.add_global("state", 2)
    b.block("entry")
    pcm_handle = indirect_handle(kit, module, pcm, "pcm_desc")

    def decode_sample(i):
        packed = b.load(codes, i)
        sign = b.lshr(packed, 3)
        code = b.and_(packed, 7)
        valprev = b.load(state, 0)
        index = b.load(state, 1)
        step = b.load(steps, kit.clamp(index, 0, 15))
        # Full dequantizer: dq = step*code/4 + step/8 (per G.721 RECONSTRUCT).
        dq = b.binop("ashr", b.mul(step, code), 2)
        dq = b.add(dq, b.binop("ashr", step, 3))
        signed_delta = b.select(sign, b.sub(0, dq), dq)
        newval = kit.clamp(b.add(valprev, signed_delta), -2048, 2047)
        newidx = kit.clamp(b.add(index, b.sub(code, 2)), 0, 15)
        # Tone/transition detector and output synthesis filter (register
        # arithmetic mirroring the predictor's pole/zero update).
        tone = b.cmp("sgt", dq, b.mul(step, 3))
        smoothed = b.add(b.mul(newval, 3), valprev)
        smoothed = b.binop("ashr", smoothed, 2)
        gained = b.binop("ashr", b.mul(smoothed, 7), 3)
        output = b.select(tone, smoothed, gained)
        output = kit.clamp(output, -2048, 2047)
        b.store(state, 0, newval)
        b.store(state, 1, newidx)
        b.store(pcm_handle, i, output)
        b.call("service", [i], returns=False)

    kit.counted(n, decode_sample, "samples")
    b.ret(b.load(state, 0))
    return BuiltWorkload("g721decode", module, (), ("pcm", "state"))


def mpeg2dec() -> BuiltWorkload:
    """mpeg2dec: motion compensation plus residual add into a new frame."""
    module, kit = new_workload("mpeg2dec")
    b = kit.b
    w, mbs, mbsize = 96, 8, 12
    ref = module.add_global("ref_frame", w, init=int_data("mpeg2.ref", w, 0, 255))
    resid = module.add_global("residual", mbs * mbsize,
                              init=int_data("mpeg2.res", mbs * mbsize, -32, 31))
    mvs = module.add_global("mvs", mbs, init=int_data("mpeg2.mv", mbs, 0, 7))
    cur = module.add_global("cur_frame", mbs * mbsize)
    b.block("entry")

    def macroblock(m):
        mv = b.load(mvs, m)
        base = b.mul(m, mbsize)

        def pel(k):
            dst = b.add(base, k)
            src = kit.clamp(b.add(dst, mv), 0, w - 1)
            predicted = b.load(ref, src)
            r = b.load(resid, dst)
            b.store(cur, dst, kit.clamp(b.add(predicted, r), 0, 255))

        kit.counted(mbsize, pel, "pels")

    def picture(p):
        kit.counted(mbs, macroblock, "mbs")

    kit.counted(4, picture, "pics")
    b.ret(b.load(cur, 0))
    return BuiltWorkload("mpeg2dec", module, (), ("cur_frame",))


def mpeg2enc() -> BuiltWorkload:
    """mpeg2enc: SAD motion search (read-only) plus a rate-control WAR."""
    module, kit = new_workload("mpeg2enc")
    add_service_function(module, tiers=("never", "rare"))
    b = kit.b
    w, mbs, mbsize, search = 96, 6, 8, 4
    ref = module.add_global("ref_frame", w, init=int_data("mpeg2e.ref", w, 0, 255))
    cur = module.add_global("cur_frame", mbs * mbsize,
                            init=int_data("mpeg2e.cur", mbs * mbsize, 0, 255))
    best_mv = module.add_global("best_mv", mbs)
    recon = module.add_global("recon", mbs * mbsize)
    rate = module.add_global("rate", 1)
    b.block("entry")
    recon_handle = indirect_handle(kit, module, recon, "recon_desc")

    def motion_search(m):
        base = b.mul(m, mbsize)
        best_sad = b.mov(1 << 20)
        best = b.mov(0)

        def candidate(mv):
            sad = b.mov(0)

            def diff(k):
                a = b.load(cur, b.add(base, k))
                src = kit.clamp(b.add(b.add(base, k), mv), 0, w - 1)
                c = b.load(ref, src)
                d = b.sub(a, c)
                d = b.binop("max", d, b.sub(0, d))
                b.add(sad, d, sad)

            kit.counted(mbsize, diff, "sad")
            better = b.cmp("slt", sad, best_sad)
            b.select(better, sad, best_sad, dest=best_sad)
            b.select(better, mv, best, dest=best)

        kit.counted(search, candidate, "cands")
        b.store(best_mv, m, best)

        def reconstruct(k):
            src = kit.clamp(b.add(b.add(base, k), best), 0, w - 1)
            b.store(recon_handle, b.add(base, k), b.load(ref, src))

        kit.counted(mbsize, reconstruct, "recon")
        bits = b.load(rate, 0)          # rate control: WAR on one cell
        b.store(rate, 0, b.add(bits, best_sad))
        b.call("service", [m], returns=False)

    kit.counted(mbs, motion_search, "mbs")
    add_report_function(module, "rate", external_name="bitstream_flush")
    b.call("report", [], returns=False)
    b.ret(b.load(rate, 0))
    return BuiltWorkload("mpeg2enc", module, (), ("best_mv", "recon", "rate"))


def pegwitenc() -> BuiltWorkload:
    """pegwitenc: block cipher rounds mixing a state block in place."""
    module, kit = new_workload("pegwitenc")
    add_service_function(module, tiers=("never",))
    b = kit.b
    n, rounds = 96, 4
    plain = module.add_global("plain", n, init=int_data("pegwit.p", n, 0, 255))
    key = module.add_global("key", 8, init=int_data("pegwit.k", 8, 1, 255))
    cipher = module.add_global("cipher", n)
    stateblk = module.add_global("stateblk", 8, init=[17] * 8)
    b.block("entry")
    cipher_handle = indirect_handle(kit, module, cipher, "cipher_desc")

    def encrypt_word(i):
        p = b.load(plain, i)
        slot = b.and_(i, 7)
        s = b.load(stateblk, slot)      # cipher state: read ...
        k = b.load(key, slot)
        mixed = b.xor(p, s)
        mixed = b.add(b.mul(mixed, 17), k)
        mixed = b.and_(mixed, 0xFFFF)

        def one_round(r):
            nonlocal_mix = b.load(stateblk, b.and_(b.add(slot, r), 7))
            b.xor(mixed, nonlocal_mix, mixed)
            b.and_(b.mul(mixed, 5), 0xFFFF, mixed)

        kit.counted(rounds, one_round, "rounds")
        b.store(stateblk, slot, mixed)  # ... then overwritten: WAR
        b.store(cipher_handle, i, mixed)
        b.call("service", [i], returns=False)

    kit.counted(n, encrypt_word, "words")
    b.ret(b.load(cipher, 0))
    return BuiltWorkload("pegwitenc", module, (), ("cipher", "stateblk"))


def pegwitdec() -> BuiltWorkload:
    """pegwitdec: the matching decryption (same in-place state WAR)."""
    module, kit = new_workload("pegwitdec")
    add_service_function(module, tiers=("never",))
    b = kit.b
    n, rounds = 96, 4
    cipher = module.add_global("cipher", n, init=int_data("pegwitd.c", n, 0, 0xFFFF))
    key = module.add_global("key", 8, init=int_data("pegwit.k", 8, 1, 255))
    plain = module.add_global("plain", n)
    stateblk = module.add_global("stateblk", 8, init=[17] * 8)
    b.block("entry")
    plain_handle = indirect_handle(kit, module, plain, "plain_desc")

    def decrypt_word(i):
        c = b.load(cipher, i)
        slot = b.and_(i, 7)
        s = b.load(stateblk, slot)
        k = b.load(key, slot)
        mixed = b.xor(c, k)

        def one_round(r):
            other = b.load(stateblk, b.and_(b.add(slot, r), 7))
            b.xor(mixed, other, mixed)
            b.and_(b.add(mixed, 3), 0xFFFF, mixed)

        kit.counted(rounds, one_round, "rounds")
        b.store(stateblk, slot, b.xor(mixed, s))
        b.store(plain_handle, i, b.and_(mixed, 255))
        b.call("service", [i], returns=False)

    kit.counted(n, decrypt_word, "words")
    b.ret(b.load(plain, 0))
    return BuiltWorkload("pegwitdec", module, (), ("plain", "stateblk"))


def rawcaudio() -> BuiltWorkload:
    """rawcaudio: IMA-ADPCM audio encoder (tiny state, long stream)."""
    module, kit = new_workload("rawcaudio")
    add_service_function(module, tiers=("never",))
    b = kit.b
    n = 256
    _adpcm_tables(module)
    steps = module.globals["step_table"]
    audio = module.add_global("audio", n, init=int_data("rawc.a", n, -512, 511))
    nibbles = module.add_global("nibbles", n)
    state = module.add_global("state", 2)
    b.block("entry")
    nib_handle = indirect_handle(kit, module, nibbles, "nib_desc")

    def encode(i):
        s = b.load(audio, i)
        pred = b.load(state, 0)
        idx = b.load(state, 1)
        step = b.load(steps, kit.clamp(idx, 0, 15))
        diff = b.sub(s, pred)
        neg = b.cmp("slt", diff, 0)
        mag = b.select(neg, b.sub(0, diff), diff)
        nib = kit.clamp(b.sdiv(mag, b.binop("max", step, 1)), 0, 7)
        delta = b.mul(nib, step)
        pred2 = b.select(neg, b.sub(pred, delta), b.add(pred, delta))
        b.store(state, 0, kit.clamp(pred2, -512, 511))
        b.store(state, 1, kit.clamp(b.add(idx, b.sub(nib, 2)), 0, 15))
        b.store(nib_handle, i, b.or_(b.shl(neg, 3), nib))
        b.call("service", [i], returns=False)

    kit.counted(n, encode, "samples")
    b.ret(b.load(state, 0))
    return BuiltWorkload("rawcaudio", module, (), ("nibbles", "state"))


def rawdaudio() -> BuiltWorkload:
    """rawdaudio: IMA-ADPCM audio decoder."""
    module, kit = new_workload("rawdaudio")
    add_service_function(module, tiers=("never",))
    b = kit.b
    n = 256
    _adpcm_tables(module)
    steps = module.globals["step_table"]
    nibbles = module.add_global("nibbles", n, init=int_data("rawd.n", n, 0, 15))
    audio = module.add_global("audio", n)
    state = module.add_global("state", 2)
    b.block("entry")
    audio_handle = indirect_handle(kit, module, audio, "audio_desc")

    def decode(i):
        packed = b.load(nibbles, i)
        neg = b.lshr(packed, 3)
        nib = b.and_(packed, 7)
        pred = b.load(state, 0)
        idx = b.load(state, 1)
        step = b.load(steps, kit.clamp(idx, 0, 15))
        # IMA reference reconstruction: vpdiff = step/8 + nibble-weighted
        # step halves (the bit-serial loop unrolled into register ops).
        vpdiff = b.binop("ashr", step, 3)
        b4 = b.and_(b.lshr(nib, 2), 1)
        b2 = b.and_(b.lshr(nib, 1), 1)
        b1 = b.and_(nib, 1)
        vpdiff = b.add(vpdiff, b.mul(b4, step))
        vpdiff = b.add(vpdiff, b.mul(b2, b.binop("ashr", step, 1)))
        vpdiff = b.add(vpdiff, b.mul(b1, b.binop("ashr", step, 2)))
        pred2 = b.select(neg, b.sub(pred, vpdiff), b.add(pred, vpdiff))
        clamped = kit.clamp(pred2, -512, 511)
        # Output upsample/scale stage (register-only post-processing).
        wide = b.shl(clamped, 4)
        dither = b.and_(b.mul(i, 11), 15)
        sample_out = b.add(wide, dither)
        b.store(state, 0, clamped)
        b.store(state, 1, kit.clamp(b.add(idx, b.sub(nib, 2)), 0, 15))
        b.store(audio_handle, i, sample_out)
        b.call("service", [i], returns=False)

    kit.counted(n, decode, "samples")
    b.ret(b.load(state, 0))
    return BuiltWorkload("rawdaudio", module, (), ("audio", "state"))
