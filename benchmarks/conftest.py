"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure end-to-end (build →
profile → analyze → instrument → aggregate) inside ``benchmark.pedantic``
with a single round, prints the paper-shaped table, and asserts the
qualitative claims — who wins, by roughly what factor, where the
crossovers fall.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
