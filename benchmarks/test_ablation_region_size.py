"""Ablation: region size vs coverage (paper Section 3.3 trade-off).

"The larger the region ... the more likely that a transient fault
striking within the region will be detected before control exits" — but
larger regions are less likely to be inherently idempotent and cost more
to checkpoint.  Sweeping the merge size cap exposes the trade-off the
paper's Table 1 envelope (100-1000 instructions) resolves.
"""

from repro.encore import EncoreConfig, compile_for_encore
from repro.workloads import build_workload

WORKLOADS = ["172.mgrid", "164.gzip", "179.art", "cjpeg"]
CAPS = (25.0, 1000.0, 1e9)


def sweep_region_size():
    rows = {}
    for cap in CAPS:
        coverage = 0.0
        mean_len = []
        for name in WORKLOADS:
            built = build_workload(name)
            report = compile_for_encore(
                built.module,
                EncoreConfig(max_region_length=cap),
                args=built.args,
            )
            coverage += report.coverage(100).recoverable
            for region in report.selected_regions:
                if region.dyn_instructions > 0:
                    mean_len.append(region.activation_length)
        rows[cap] = {
            "coverage": coverage / len(WORKLOADS),
            "mean_length": sum(mean_len) / max(len(mean_len), 1),
        }
    return rows


def test_region_size_tradeoff(once):
    rows = once(sweep_region_size)
    print()
    print(f"{'size cap':>12} {'coverage(D=100)':>16} {'mean act len':>14}")
    for cap, row in rows.items():
        print(f"{cap:>12.0f} {row['coverage']:>16.2%} {row['mean_length']:>14.1f}")

    tiny, paper, unbounded = (rows[c] for c in CAPS)

    # Larger caps produce larger regions.
    assert tiny["mean_length"] <= paper["mean_length"] + 1e-9
    assert paper["mean_length"] <= unbounded["mean_length"] + 1e-9
    # Tiny regions lose coverage to the alpha penalty (n << Dmax).
    assert paper["coverage"] >= tiny["coverage"] - 1e-9
    # Removing the cap keeps buying alpha in this model (bigger n), but
    # with diminishing returns relative to the tiny->paper jump; the
    # paper bounds region size for wasted re-execution work and
    # checkpoint-buffer growth, which the alpha model does not price.
    assert unbounded["coverage"] >= paper["coverage"] - 1e-9
    assert unbounded["coverage"] - paper["coverage"] < 0.25
