"""SFI validation: Monte-Carlo fault injection vs the analytical model.

The paper's methodology (Section 4) backs its analytical coverage model
with statistical fault injection.  Here we inject register bit-flips
into instrumented executions of representative workloads, drive the
Encore recovery path for real, and check that the empirical
recover-or-mask rate tracks the alpha-model prediction and improves
with instrumentation and with shorter detection latency.
"""

import copy

from repro.encore import EncoreConfig, compile_for_encore
from repro.experiments import run_sfi
from repro.runtime import DetectionModel
from repro.workloads import build_workload

WORKLOADS = ["172.mgrid", "g721decode", "256.bzip2"]
TRIALS = 120


def _campaign(module, built, detector, seed=11):
    return run_sfi(
        module,
        function=built.entry,
        args=built.args,
        output_objects=built.output_objects,
        detector=detector,
        trials=TRIALS,
        seed=seed,
    )


def run_validation():
    rows = {}
    detector = DetectionModel(dmax=50)
    for name in WORKLOADS:
        built = build_workload(name)
        plain_module = copy.deepcopy(built.module)
        report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
        hardened = report.module
        plain = _campaign(plain_module, built, detector)
        protected = _campaign(hardened, built, detector)
        fast = _campaign(hardened, built, DetectionModel(dmax=5))
        rows[name] = {
            "plain": plain,
            "protected": protected,
            "fast": fast,
            "model": report.coverage(50).recoverable,
        }
    return rows


def test_sfi_validation(once):
    rows = once(run_validation)
    print()
    print(f"{'benchmark':<12} {'plain':>8} {'encore':>8} {'fast':>8} {'model':>8}")
    for name, row in rows.items():
        print(
            f"{name:<12} {row['plain'].covered_fraction:>8.2%} "
            f"{row['protected'].covered_fraction:>8.2%} "
            f"{row['fast'].covered_fraction:>8.2%} "
            f"{row['model']:>8.2%}"
        )

    for name, row in rows.items():
        plain = row["plain"].covered_fraction
        protected = row["protected"].covered_fraction
        fast = row["fast"].covered_fraction

        # Encore must not hurt, and must add real coverage somewhere.
        assert protected >= plain - 0.08, (name, plain, protected)
        # Shorter latency at least matches longer latency (sampling noise
        # allowed).
        assert fast >= protected - 0.08, (name, protected, fast)
        # Recovery machinery actually fires.
        assert any(t.recovery_attempts > 0 for t in row["protected"].trials), name
        # Empirical coverage tracks the model's software-recoverable
        # fraction.  The empirical campaign injects *all* fault classes,
        # including the address/control faults the paper's Encore
        # explicitly does not recover (Section 4.3) — e.g. a corrupted
        # index that silently clobbers a cell outside the re-executed
        # region's write set — so the empirical number sits below the
        # model by roughly that class's share.
        assert protected >= row["model"] - 0.30, (name, protected, row["model"])
        assert protected >= 0.35, (name, protected)

    improvements = [
        rows[n]["protected"].covered_fraction - rows[n]["plain"].covered_fraction
        for n in rows
    ]
    assert max(improvements) > 0.03, improvements
