"""Extension study: beyond the single-event-upset assumption.

The paper (like most of the soft-error literature) assumes one
transient per execution.  This study injects 1, 2, and 4 independent
faults per run into an Encore-protected workload: coverage should
degrade gracefully — each fault needs to be detected within its own
region, so multi-fault coverage approaches the product of single-fault
survival — rather than collapse.
"""

from repro.encore import EncoreConfig, compile_for_encore
from repro.experiments import run_sfi
from repro.runtime import DetectionModel, SupervisorPolicy
from repro.workloads import build_workload

WORKLOAD = "g721decode"
FAULT_COUNTS = (1, 2, 4)
TRIALS = 100


def run_multifault_study():
    built = build_workload(WORKLOAD)
    report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
    rows = {}
    for count in FAULT_COUNTS:
        # N independent faults can legitimately fire N back-to-back
        # rollbacks into one region before it commits, so the livelock
        # bound (tuned for the single-event-upset model) scales with
        # the fault count here.
        policy = SupervisorPolicy(max_attempts=max(3, 2 * count))
        campaign = run_sfi(
            report.module,
            args=built.args,
            output_objects=built.output_objects,
            detector=DetectionModel(dmax=20),
            trials=TRIALS,
            seed=31,
            faults_per_trial=count,
            policy=policy,
        )
        rows[count] = campaign
    return rows


def test_multifault_graceful_degradation(once):
    rows = once(run_multifault_study)
    print()
    print(f"{'faults/run':>11} {'covered':>9} {'recovered':>10} {'sdc':>7}")
    for count, campaign in rows.items():
        print(f"{count:>11} {campaign.covered_fraction:>9.1%} "
              f"{campaign.fraction('recovered'):>10.1%} "
              f"{campaign.fraction('sdc'):>7.1%}")

    single = rows[1].covered_fraction
    double = rows[2].covered_fraction
    quad = rows[4].covered_fraction

    # Single-fault coverage is strong (the paper's regime).
    assert single > 0.7, single
    # Coverage decays monotonically with fault count (noise margin).
    assert double <= single + 0.08
    assert quad <= double + 0.08
    # ... but gracefully: multiple faults are roughly independent
    # events, so coverage stays near the independence prediction and
    # far above zero.
    independence = single ** 4
    assert quad >= independence - 0.25, (quad, independence)
    assert quad > 0.25, quad
    # Recovery still fires under multi-fault pressure.
    assert any(t.recovery_attempts >= 2 for t in rows[4].trials)
