"""Figure 7b: checkpoint storage bytes per region.

Paper shape: on the order of tens of bytes per region (the paper
reports a 24-byte average) — memory checkpoints store data + address,
register checkpoints one word — orders of magnitude below full-system
checkpointing footprints.
"""

from repro.experiments import fig7_overheads


def test_fig7b_storage_overhead(once):
    data = once(fig7_overheads.run, measure=False)
    print()
    print(fig7_overheads.render(data))

    totals = [v["total"] for v in data.storage.values()]
    mean_total = sum(totals) / len(totals)

    # Tens of bytes, not kilobytes: the paper's order of magnitude.
    assert 1.0 <= mean_total <= 100.0, mean_total
    assert max(totals) < 500.0

    # Both contributions exist somewhere: memory (data+address) and
    # register words.
    assert any(v["memory"] > 0 for v in data.storage.values())
    assert any(v["register"] > 0 for v in data.storage.values())

    # Memory checkpoints store two words per site, register one: where
    # both exist, totals decompose exactly.
    for name, v in data.storage.items():
        assert abs(v["total"] - (v["memory"] + v["register"])) < 1e-9, name
