"""Replay-detection benchmark: measured latency vs the alpha model.

Runs matched model/replay SFI campaigns on three workloads (shared
fault plans, only the detector differs) and reports, per workload, the
*measured* replay detection-latency distribution (mean/p50/p90/max),
the covered fractions under both detectors alongside the analytical
alpha-model prediction at ``Dmax = chunk``, and the two overheads the
model assumes away: record cost on the critical path and replayed
instructions off it.

``--check`` enforces the replay backend's contract:

* record overhead stays bounded (<= ``--record-bound``, default 35%);
* every measured latency fits in one chunk;
* every struck trial's divergence is actually detected;
* serial and ``--jobs N`` campaigns are bit-identical under both the
  fast and the reference engine.

Usage::

    PYTHONPATH=src python benchmarks/bench_replay.py \
        [--trials 40] [--chunk 64] [--jobs 2] [--check]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.encore import EncoreConfig  # noqa: E402
from repro.experiments.fig8_coverage import (  # noqa: E402
    REPLAY_WORKLOADS,
    render_replay,
    run_replay_headtohead,
)
from repro.experiments.harness import PipelineCache, run_sfi  # noqa: E402


def check_bit_equality(name, trials, chunk, seed, jobs):
    """Serial == parallel, fast == reference, down to the last field."""
    result = PipelineCache().run_all(EncoreConfig(), [name])[0]
    built = result.built
    runs = {}
    for engine in ("fast", "reference"):
        for n_jobs in (1, jobs):
            campaign = run_sfi(
                result.report.module,
                function=built.entry,
                args=built.args,
                output_objects=built.output_objects,
                externals=built.externals,
                detector_backend="replay",
                replay_chunk_size=chunk,
                trials=trials,
                seed=seed,
                jobs=n_jobs,
            )
            runs[(engine, n_jobs)] = [
                dataclasses.astuple(t) for t in campaign.trials
            ]
    baseline = runs[("fast", 1)]
    return all(trial_seq == baseline for trial_seq in runs.values())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", default=",".join(REPLAY_WORKLOADS),
                        help="comma-separated workload names")
    parser.add_argument("--trials", type=int, default=40)
    parser.add_argument("--chunk", type=int, default=64)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--record-bound", type=float, default=0.35,
                        help="max acceptable record overhead fraction")
    parser.add_argument("--check", action="store_true",
                        help="fail on unbounded overhead, out-of-chunk "
                             "latency, missed divergence, or serial/"
                             "parallel mismatch")
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.workloads.split(",") if n.strip()]
    start = time.perf_counter()
    data = run_replay_headtohead(
        names, chunk_size=args.chunk, trials=args.trials, seed=args.seed
    )
    print(render_replay(data))
    print()
    for name in sorted(data.rows):
        row = data.rows[name]
        print(f"{name}: latency mean={row['measured_mean_latency']:.1f} "
              f"p50={row['measured_p50_latency']:.0f} "
              f"p90={row['measured_p90_latency']:.0f} "
              f"max={row['measured_max_latency']:.0f} "
              f"(chunk {data.chunk_size}); "
              f"divergence detected in {row['divergence_rate']:.0%} "
              f"of symptom-free struck trials")
    print(f"# head-to-head wall clock: {time.perf_counter() - start:.2f}s")

    equal = check_bit_equality(
        names[0], args.trials, args.chunk, args.seed, args.jobs
    )
    verdict = "identical" if equal else "DIVERGED"
    print(f"equivalence ({names[0]}): serial/jobs={args.jobs} x "
          f"fast/reference trial sequences {verdict}")

    if not args.check:
        return 0

    failures = []
    for name in sorted(data.rows):
        row = data.rows[name]
        if row["record_overhead"] > args.record_bound:
            failures.append(
                f"{name}: record overhead {row['record_overhead']:.1%} "
                f"> bound {args.record_bound:.0%}"
            )
        if row["measured_max_latency"] > args.chunk:
            failures.append(
                f"{name}: measured latency {row['measured_max_latency']:.0f} "
                f"exceeds chunk {args.chunk}"
            )
        if row["divergence_rate"] < 1.0:
            failures.append(
                f"{name}: only {row['divergence_rate']:.0%} of "
                f"symptom-free struck trials flagged a divergence"
            )
    if not equal:
        failures.append("serial/parallel or fast/reference trials diverged")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"check passed: record overhead <= {args.record_bound:.0%}, "
          f"latency <= chunk, all divergences detected, campaigns "
          f"bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
