"""Wall-clock benchmark: cold vs cached configuration sweep.

Runs a Figure-5-style Pmin sweep (four configurations, one workload)
twice: **cold** (a fresh :class:`AnalysisCache` per configuration, so
every compilation re-profiles and re-derives every verdict) and
**cached** (one shared cache across the sweep, the way
``experiments.harness.PipelineCache`` runs it).  Verifies the two
sweeps produce identical reports, that the cached sweep executed
profiling exactly once, and reports the speedup; ``--check`` enforces
the >= 1.5x acceptance bar.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py \
        [--workload 164.gzip] [--repeat 3] [--check]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.encore import EncoreConfig, compile_for_encore  # noqa: E402
from repro.pipeline import AnalysisCache, PipelineStats  # noqa: E402
from repro.workloads import build_workload  # noqa: E402

PMIN_SWEEP = (None, 0.0, 0.1, 0.25)


def sweep_facts(report):
    return (
        tuple(sorted(
            (r.func, r.header, tuple(sorted(r.blocks)), r.status.name)
            for r in report.selected_regions
        )),
        report.instrumentation.instrumented_regions,
        round(report.estimated_overhead(), 9),
    )


def run_sweep(workload, shared_cache):
    """One full sweep; returns (facts per config, stats, seconds)."""
    cache = AnalysisCache() if shared_cache else None
    stats = PipelineStats()
    facts = []
    start = time.perf_counter()
    for pmin in PMIN_SWEEP:
        built = build_workload(workload)
        report = compile_for_encore(
            built.module,
            EncoreConfig(pmin=pmin),
            clone=False,
            cache=cache if shared_cache else AnalysisCache(),
            function=built.entry,
            args=built.args,
            externals=built.externals,
            stats=stats,
        )
        facts.append(sweep_facts(report))
    return facts, stats, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="164.gzip")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions; best-of is reported")
    parser.add_argument("--check", action="store_true",
                        help="fail unless cached speedup >= 1.5x and "
                             "profiling ran exactly once")
    args = parser.parse_args(argv)

    cold_best = cached_best = float("inf")
    cold_facts = cached_facts = None
    cached_stats = None
    for _ in range(max(1, args.repeat)):
        facts, _, seconds = run_sweep(args.workload, shared_cache=False)
        cold_facts, cold_best = facts, min(cold_best, seconds)
        facts, stats, seconds = run_sweep(args.workload, shared_cache=True)
        cached_facts, cached_stats = facts, stats
        cached_best = min(cached_best, seconds)

    speedup = cold_best / cached_best if cached_best > 0 else float("inf")
    profile_runs = cached_stats.executed("profile")
    identical = cold_facts == cached_facts

    print(f"workload:            {args.workload}")
    print(f"sweep:               Pmin in {PMIN_SWEEP}")
    print(f"cold sweep:          {cold_best:.4f}s "
          f"(fresh cache per configuration)")
    print(f"cached sweep:        {cached_best:.4f}s (one shared cache)")
    print(f"speedup:             {speedup:.2f}x")
    print(f"profile executions:  {profile_runs} "
          f"({cached_stats.stat('profile').cache_hits} served from cache)")
    print(f"reports identical:   {identical}")
    print()
    print(cached_stats.render_timing())

    if not identical:
        print("FAIL: cached sweep diverged from cold sweep", file=sys.stderr)
        return 1
    if args.check:
        if profile_runs != 1:
            print(f"FAIL: profiling executed {profile_runs}x (expected 1)",
                  file=sys.stderr)
            return 1
        if speedup < 1.5:
            print(f"FAIL: speedup {speedup:.2f}x < 1.5x", file=sys.stderr)
            return 1
        print("CHECK PASSED: identical reports, single profile execution, "
              f"{speedup:.2f}x >= 1.5x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
