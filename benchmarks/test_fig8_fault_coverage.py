"""Figure 8: full-system fault coverage at detection latencies 1000/100/10.

Paper headline: ~91% of faults masked by hardware; with Encore plus a
Shoestring-class detector (Dmax = 100) total coverage reaches ~97% on
average — a ~66% reduction in uncovered faults — and coverage improves
monotonically as detection latency shrinks.
"""

from repro.experiments import fig8_coverage


def test_fig8_fault_coverage(once):
    data = once(fig8_coverage.run)
    print()
    print(fig8_coverage.render(data))

    names = list(data.coverage)
    n = len(names)

    def mean(metric, dmax):
        return sum(data.coverage[name][dmax][metric] for name in names) / n

    masked = mean("masked", 100)
    cov_1000 = mean("total", 1000)
    cov_100 = mean("total", 100)
    cov_10 = mean("total", 10)

    # Hardware masking baseline near the paper's 91%.
    assert 0.88 <= masked <= 0.94, masked

    # Total coverage near the paper's 97% at Shoestring-class latency.
    assert 0.94 <= cov_100 <= 0.99, cov_100

    # Monotone in detection latency: 10 beats 100 beats 1000.
    assert cov_10 > cov_100 > cov_1000 > masked - 1e-9

    # The paper's headline: a large reduction in unrecovered faults
    # relative to masking alone (66% in the paper; require a big chunk).
    reduction = (cov_100 - masked) / (1.0 - masked)
    assert reduction > 0.45, reduction

    # Stacks are well-formed per benchmark.
    for name in names:
        for dmax in data.latencies:
            row = data.coverage[name][dmax]
            total = (
                row["masked"] + row["idem"] + row["ckpt"] + row["not_recoverable"]
            )
            assert abs(total - 1.0) < 1e-6, (name, dmax)

    # Some benchmarks recover nearly all faults (mgrid/rawcaudio-class).
    assert any(data.coverage[name][100]["total"] > 0.99 for name in names)
