"""Figure 7a: runtime overhead under static vs optimistic alias analysis.

Paper shape: every benchmark stays within (well under) the ~20%
budget, the suite average lands in the low-to-mid teens, and a more
powerful (optimistic) alias analysis lowers the overhead for the
benchmarks whose checkpoints come from unprovable aliasing.
"""

from repro.experiments import fig7_overheads


def test_fig7a_runtime_overhead(once):
    data = once(fig7_overheads.run)
    print()
    print(fig7_overheads.render(data))

    static = {n: v["static"] for n, v in data.overheads.items()}
    optimistic = {n: v["optimistic"] for n, v in data.overheads.items()}
    measured = {n: v["measured"] for n, v in data.overheads.items()}

    # Budget respected everywhere (paper: tuned to ~20%).
    for name, value in static.items():
        assert value <= 0.21, (name, value)

    # Mean overhead in the paper's ballpark (14%): ours is mid-single to
    # low-double digits; assert the band rather than the point.
    mean_static = sum(static.values()) / len(static)
    assert 0.02 <= mean_static <= 0.20, mean_static

    # The optimistic bound helps overall and dramatically for some
    # benchmarks (where checkpointing is alias-analysis-forced).
    mean_opt = sum(optimistic[n] for n in static) / len(static)
    assert mean_opt <= mean_static + 1e-9
    assert any(
        static[n] > 1.5 * optimistic[n] + 1e-9 and static[n] > 0.03
        for n in static
    ), "some benchmark must show a big static->optimistic win"

    # The profile-based estimate tracks the measured instrumented run.
    for name in static:
        if measured[name] > 0.01:
            ratio = measured[name] / max(static[name], 1e-9)
            assert 0.7 <= ratio <= 1.3, (name, ratio)
