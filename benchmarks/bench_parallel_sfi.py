"""Wall-clock benchmark: serial vs parallel SFI campaign execution.

Runs the same campaign through ``jobs=1`` and ``jobs=N``, verifies the
trial sequences are bit-identical (the serial-equivalence guarantee),
and reports the speedup.  On a machine with >= ``--jobs`` free cores a
>= 2x speedup at ``--jobs 4`` on a 400-trial campaign is the
acceptance bar; ``--check`` enforces it (and is skipped automatically
when the host has fewer cores than workers).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_sfi.py \
        [--trials 400] [--jobs 4] [--module examples/mc/crc32.mc] [--check]
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.encore import compile_for_encore  # noqa: E402
from repro.frontend import compile_source  # noqa: E402
from repro.runtime import DetectionModel, run_campaign  # noqa: E402


def time_campaign(module, trials, seed, jobs, dmax):
    start = time.perf_counter()
    campaign = run_campaign(
        module,
        trials=trials,
        seed=seed,
        detector=DetectionModel(dmax=dmax),
        jobs=jobs,
    )
    return campaign, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--module", default=str(REPO_ROOT / "examples/mc/crc32.mc"))
    parser.add_argument("--trials", type=int, default=400)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--dmax", type=int, default=50)
    parser.add_argument("--protect", action="store_true",
                        help="run the Encore pipeline before injecting")
    parser.add_argument("--check", action="store_true",
                        help="fail unless parallel speedup >= 2x (needs "
                             ">= --jobs cores)")
    args = parser.parse_args(argv)

    module = compile_source(Path(args.module).read_text())
    if args.protect:
        module = compile_for_encore(module, clone=False).module

    cores = os.cpu_count() or 1
    print(f"module={args.module} trials={args.trials} jobs={args.jobs} "
          f"cores={cores}")

    serial, serial_s = time_campaign(
        module, args.trials, args.seed, 1, args.dmax
    )
    print(f"serial:   {serial_s:7.2f}s  {serial.throughput:7.1f} trials/sec")

    parallel, parallel_s = time_campaign(
        module, args.trials, args.seed, args.jobs, args.dmax
    )
    print(f"parallel: {parallel_s:7.2f}s  {parallel.throughput:7.1f} trials/sec "
          f"({parallel.worker_trials})")

    if serial.trials != parallel.trials:
        print("FAIL: parallel campaign diverged from serial", file=sys.stderr)
        return 1
    print("equivalence: serial and parallel trial sequences identical")

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"speedup: {speedup:.2f}x at jobs={args.jobs}")
    for outcome, fraction in serial.summary().items():
        print(f"  {outcome:<24} {fraction:.1%}")

    if args.check:
        if cores < args.jobs:
            print(f"check skipped: host has {cores} cores < jobs={args.jobs}")
        elif speedup < 2.0:
            print(f"FAIL: speedup {speedup:.2f}x < 2x", file=sys.stderr)
            return 1
        else:
            print("check passed: >= 2x speedup")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
