"""Ablation: static vs profiled vs optimistic alias analysis.

The paper's footnote 2 calls dynamic memory profiling "a promising area
of future work"; this repo implements it as the ``profiled`` alias mode.
Expected ordering per benchmark: the profiled overhead sits between the
conservative static analysis and the perfect-disambiguator optimistic
bound, and instrumentation stays output-preserving in all modes.
"""

import copy

from repro.encore import EncoreConfig, compile_for_encore
from repro.runtime import Interpreter
from repro.workloads import build_workload

WORKLOADS = ["164.gzip", "g721decode", "pegwitenc", "cjpeg", "183.equake"]
MODES = ("static", "profiled", "optimistic")


def sweep_modes():
    rows = {}
    for name in WORKLOADS:
        rows[name] = {}
        for mode in MODES:
            built = build_workload(name)
            golden = Interpreter(copy.deepcopy(built.module)).run(
                built.entry, built.args, output_objects=built.output_objects
            )
            report = compile_for_encore(
                built.module, EncoreConfig(alias_mode=mode), args=built.args
            )
            result = Interpreter(report.module).run(
                built.entry, built.args, output_objects=built.output_objects
            )
            rows[name][mode] = {
                "overhead": report.estimated_overhead(),
                "coverage": report.coverage(100).recoverable,
                "correct": result.output == golden.output
                and result.value == golden.value,
            }
    return rows


def test_alias_mode_ablation(once):
    rows = once(sweep_modes)
    print()
    print(f"{'benchmark':<12}" + "".join(f"{m:>22}" for m in MODES))
    for name, by_mode in rows.items():
        line = f"{name:<12}"
        for mode in MODES:
            cell = by_mode[mode]
            line += f"  {cell['overhead']:>7.1%} ovh {cell['coverage']:>6.1%} cov"
        print(line)

    for name, by_mode in rows.items():
        # Semantics preserved under every mode.
        for mode in MODES:
            assert by_mode[mode]["correct"], (name, mode)
        static = by_mode["static"]["overhead"]
        profiled = by_mode["profiled"]["overhead"]
        optimistic = by_mode["optimistic"]["overhead"]
        # Profiled never costs more than static (same coverage pressure,
        # strictly better disambiguation).
        assert profiled <= static + 0.01, (name, static, profiled)
        # And cannot be meaningfully cheaper than the perfect bound.
        assert profiled >= optimistic - 0.05, (name, profiled, optimistic)

    # The dynamic profile recovers a real chunk of the static-vs-
    # optimistic gap on at least one pointer-heavy benchmark.
    gains = [
        rows[n]["static"]["overhead"] - rows[n]["profiled"]["overhead"]
        for n in WORKLOADS
    ]
    assert max(gains) > 0.02, gains
