"""Overhead benchmark: recovery supervision and the campaign journal.

Three questions, answered on the same campaign:

1. What does supervision cost?  Every trial already runs a per-step
   hook for fault injection; the supervisor adds progress tracking on
   top, and the optional watchdog adds a budget comparison per step.
   The bench times the default policy against a watchdog-armed policy,
   with a raw golden-replay loop as the floor (what a trial would cost
   with no injection machinery at all).
2. What does journaling cost per trial?  Buffered appends (the
   default: flush per record) versus ``fsync=True`` (survives power
   loss, not just process death).
3. Sanity: identical trial sequences across all variants — overhead
   knobs must never change results.

Usage::

    PYTHONPATH=src python benchmarks/bench_supervisor.py \
        [--trials 300] [--module examples/mc/crc32.mc] [--check]
"""

from __future__ import annotations

import argparse
import copy
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.encore import compile_for_encore  # noqa: E402
from repro.frontend import compile_source  # noqa: E402
from repro.runtime import (  # noqa: E402
    CampaignJournal,
    DetectionModel,
    Interpreter,
    SupervisorPolicy,
    campaign_metadata,
    run_campaign,
)


def time_campaign(module, trials, seed, dmax, policy=None, on_result=None):
    start = time.perf_counter()
    campaign = run_campaign(
        module,
        trials=trials,
        seed=seed,
        detector=DetectionModel(dmax=dmax),
        policy=policy,
        on_result=on_result,
    )
    return campaign, time.perf_counter() - start


def time_golden_replays(module, count):
    """The floor: the same executions with no hooks, no injection."""
    start = time.perf_counter()
    for _ in range(count):
        Interpreter(copy.deepcopy(module)).run("main")
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--module", default=str(REPO_ROOT / "examples/mc/crc32.mc"))
    parser.add_argument("--trials", type=int, default=300)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--dmax", type=int, default=50)
    parser.add_argument("--replays", type=int, default=30,
                        help="golden replays for the no-hooks floor")
    parser.add_argument("--check", action="store_true",
                        help="fail if any variant changes trial results "
                             "or supervision costs more than 2x")
    args = parser.parse_args(argv)

    module = compile_for_encore(
        compile_source(Path(args.module).read_text()), clone=False
    ).module
    print(f"module={args.module} trials={args.trials} dmax={args.dmax}")

    floor_s = time_golden_replays(module, args.replays)
    per_replay = floor_s / args.replays * 1e3
    print(f"golden replay (no hooks):      {per_replay:8.2f} ms/run")

    base, base_s = time_campaign(module, args.trials, args.seed, args.dmax)
    print(f"supervised trial (default):    "
          f"{base_s / args.trials * 1e3:8.2f} ms/trial "
          f"({base.throughput:.1f} trials/sec)")

    watchdog = SupervisorPolicy(max_attempts=3, attempt_step_budget=10_000)
    dog, dog_s = time_campaign(
        module, args.trials, args.seed, args.dmax, policy=watchdog
    )
    print(f"supervised trial (watchdog):   "
          f"{dog_s / args.trials * 1e3:8.2f} ms/trial "
          f"(x{dog_s / base_s:.2f} vs default)")

    journal_times = {}
    for label, fsync in (("buffered", False), ("fsync", True)):
        with tempfile.TemporaryDirectory() as tmp:
            path = str(Path(tmp) / "bench.jsonl")
            with CampaignJournal(path, fsync=fsync) as journal:
                journal.write_header(
                    campaign_metadata(module, args.seed,
                                      DetectionModel(dmax=args.dmax))
                )
                journaled, journaled_s = time_campaign(
                    module, args.trials, args.seed, args.dmax,
                    on_result=journal.record,
                )
            journal_times[label] = (journaled, journaled_s)
            extra_us = (journaled_s - base_s) / args.trials * 1e6
            print(f"journal append ({label:>8}):  {extra_us:8.1f} us/trial extra")

    variants = [dog] + [c for c, _ in journal_times.values()]
    if any(v.trials != base.trials for v in variants):
        print("FAIL: an overhead knob changed trial results", file=sys.stderr)
        return 1
    print("equivalence: all variants produced identical trial sequences")

    if args.check:
        if dog_s > 2.0 * base_s:
            print(f"FAIL: watchdog overhead x{dog_s / base_s:.2f} > 2x",
                  file=sys.stderr)
            return 1
        print("check passed: supervision overhead within bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
