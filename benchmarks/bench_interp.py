"""Wall-clock benchmark: fast engine vs reference engine.

Runs three workloads through both interpreter engines on three legs —
**plain** (uninstrumented module), **instrumented** (the full Encore
pipeline's output), and **under-SFI** (a seeded fault-injection
campaign) — asserting bit-identical results everywhere and reporting
steps/sec plus the fast-over-reference speedup.  ``--check`` enforces
the acceptance bar: geometric-mean speedup >= 5x on the instrumented
legs, with every leg bit-identical.  (The SFI leg installs post-step
injector hooks, which by design pins the fast engine to its reference
slow tier — it is reported for completeness and equality, not
speed.)

Usage::

    PYTHONPATH=src python benchmarks/bench_interp.py \
        [--workloads 164.gzip 183.equake cjpeg] [--repeat 3] \
        [--trials 30] [--json BENCH_interp.json] [--check]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.encore import compile_for_encore  # noqa: E402
from repro.runtime import (  # noqa: E402
    DECODE_CACHE,
    DetectionModel,
    make_interpreter,
    run_campaign,
)
from repro.workloads import build_workload  # noqa: E402

DEFAULT_WORKLOADS = ("164.gzip", "183.equake", "cjpeg")
ENGINES = ("fast", "reference")


def time_run(engine, module, built, repeat):
    """Best-of-``repeat`` wall time for one full execution."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        interp = make_interpreter(module, engine=engine,
                                  externals=built.externals)
        start = time.perf_counter()
        result = interp.run(built.entry, built.args,
                            output_objects=built.output_objects)
        best = min(best, time.perf_counter() - start)
    return result, best


def run_leg(name, module, built, repeat):
    """Both engines on one (workload, module) leg; returns a report row."""
    DECODE_CACHE.program_for(module)  # decode once, outside the clock
    results, times = {}, {}
    for engine in ENGINES:
        results[engine], times[engine] = time_run(engine, module, built, repeat)
    identical = results["fast"] == results["reference"]
    events = results["reference"].events
    return {
        "leg": name,
        "events": events,
        "fast_steps_per_sec": round(events / times["fast"]),
        "reference_steps_per_sec": round(events / times["reference"]),
        "speedup": round(times["reference"] / times["fast"], 2),
        "identical": identical,
    }


def run_sfi_leg(module, built, trials):
    """A seeded campaign on both engines: equality plus trials/sec."""
    rows = {}
    for engine in ENGINES:
        start = time.perf_counter()
        campaign = run_campaign(
            module,
            function=built.entry,
            args=built.args,
            output_objects=built.output_objects,
            externals=built.externals,
            detector=DetectionModel(dmax=40),
            trials=trials,
            seed=7,
            engine=engine,
        )
        rows[engine] = (campaign, time.perf_counter() - start)
    identical = rows["fast"][0].trials == rows["reference"][0].trials
    return {
        "leg": "under-sfi",
        "trials": trials,
        "fast_trials_per_sec": round(trials / rows["fast"][1], 1),
        "reference_trials_per_sec": round(trials / rows["reference"][1], 1),
        "identical": identical,
    }


def bench_workload(name, repeat, trials):
    built = build_workload(name)
    instrumented = compile_for_encore(
        built.module,
        function=built.entry,
        args=built.args,
        externals=built.externals,
    ).module
    return {
        "workload": name,
        "legs": [
            run_leg("plain", built.module, built, repeat),
            run_leg("instrumented", instrumented, built, repeat),
            run_sfi_leg(instrumented, built, trials),
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", nargs="*", default=DEFAULT_WORKLOADS)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per leg; best-of reported")
    parser.add_argument("--trials", type=int, default=30,
                        help="SFI campaign trials per workload")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail unless geomean instrumented speedup "
                             ">= 5x and every leg is bit-identical")
    args = parser.parse_args(argv)

    reports = [
        bench_workload(name, max(1, args.repeat), args.trials)
        for name in args.workloads
    ]

    all_identical = True
    instrumented_speedups = []
    for report in reports:
        print(f"\n{report['workload']}")
        for leg in report["legs"]:
            all_identical = all_identical and leg["identical"]
            if leg["leg"] == "under-sfi":
                print(f"  {'under-sfi':<13} fast "
                      f"{leg['fast_trials_per_sec']:>8.1f} trials/s   "
                      f"ref {leg['reference_trials_per_sec']:>8.1f} trials/s"
                      f"   identical={leg['identical']}")
                continue
            if leg["leg"] == "instrumented":
                instrumented_speedups.append(leg["speedup"])
            print(f"  {leg['leg']:<13} fast "
                  f"{leg['fast_steps_per_sec'] / 1e3:>8.0f}k steps/s   "
                  f"ref {leg['reference_steps_per_sec'] / 1e3:>8.0f}k steps/s"
                  f"   {leg['speedup']:>5.2f}x   identical={leg['identical']}")

    geomean = math.exp(
        sum(math.log(s) for s in instrumented_speedups)
        / len(instrumented_speedups)
    )
    print(f"\ninstrumented speedup geomean: {geomean:.2f}x "
          f"over {len(instrumented_speedups)} workloads")
    print(f"all legs bit-identical:       {all_identical}")

    if args.json:
        payload = {
            "benchmark": "bench_interp",
            "workloads": reports,
            "instrumented_speedup_geomean": round(geomean, 2),
            "all_identical": all_identical,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if not all_identical:
        print("FAIL: engines diverged on some leg", file=sys.stderr)
        return 1
    if args.check:
        if geomean < 5.0:
            print(f"FAIL: instrumented geomean {geomean:.2f}x < 5x",
                  file=sys.stderr)
            return 1
        print(f"CHECK PASSED: bit-identical everywhere, "
              f"{geomean:.2f}x >= 5x on instrumented legs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
