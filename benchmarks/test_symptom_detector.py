"""End-to-end detection + recovery with a *real* symptom detector.

The paper assumes Shoestring/ReStore-class detectors with uniform
latency up to ~100 instructions.  Here the likely-invariant detector
does the detecting for real, so the latency distribution is observed,
not assumed — validating that the paper's assumed regime is the one a
working symptom detector actually produces for detected faults.
"""

from repro.encore import EncoreConfig, compile_for_encore
from repro.runtime import run_symptom_campaign
from repro.workloads import build_workload

WORKLOADS = ["g721decode", "rawdaudio", "256.bzip2"]
TRIALS = 80


def run_detector_study():
    rows = {}
    for name in WORKLOADS:
        built = build_workload(name)
        report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
        campaign = run_symptom_campaign(
            report.module,
            args=built.args,
            output_objects=built.output_objects,
            trials=TRIALS,
            seed=17,
            slack=0.25,
        )
        latencies = sorted(campaign.observed_latencies())
        rows[name] = {
            "campaign": campaign,
            "latencies": latencies,
            "median": latencies[len(latencies) // 2] if latencies else None,
        }
    return rows


def test_symptom_detector_end_to_end(once):
    rows = once(run_detector_study)
    print()
    print(f"{'benchmark':<12} {'covered':>9} {'det.rate':>9} "
          f"{'median lat':>11} {'mean lat':>9}")
    for name, row in rows.items():
        campaign = row["campaign"]
        print(f"{name:<12} {campaign.covered_fraction:>9.1%} "
              f"{campaign.detection_rate:>9.1%} "
              f"{str(row['median']):>11} {campaign.mean_latency:>9.1f}")

    # bzip2 deliberately concedes half its execution (Figure 6), so its
    # floor is lower; the codecs must clear a majority.
    floors = {"256.bzip2": 0.35}
    for name, row in rows.items():
        campaign = row["campaign"]
        assert campaign.covered_fraction > floors.get(name, 0.5), name
        # The detector notices a solid share of non-masked faults.
        assert campaign.detection_rate > 0.3, name
        # Recovery actually goes through the Encore rollback path.
        assert any(t.recoveries > 0 for t in campaign.trials), name

    # Latency regime: medians land in the short-latency band the paper
    # assumes for symptom detectors (well under ~1000 instructions).
    medians = [row["median"] for row in rows.values() if row["median"] is not None]
    assert medians, "no observed detection latencies"
    assert min(medians) < 1000
    # And a meaningful share of detections are near-immediate (< 100).
    all_lat = [l for row in rows.values() for l in row["latencies"]]
    fast = sum(1 for l in all_lat if l < 100) / len(all_lat)
    assert fast > 0.3, fast
