"""Benchmark: incremental injection vs full re-campaign after an edit.

The edit-one-function scenario the subsystem exists for: a dominant
function ``f`` (most of the fault-site mass) plus a small function
``g`` whose body changes between campaigns.  A full re-campaign pays
for every section again; the incremental run composes ``f``'s stored
distribution and re-injects only ``g``'s sections under bit-level
pruning with importance-sampled budgets.

Three acceptance properties, enforced by ``--check``:

1. **Trial reduction**: the incremental run executes at least 5x fewer
   trials than the full campaign *at matched confidence* — its
   stratified 95% CI half-width must not exceed the full campaign's
   binomial half-width.
2. **No-change determinism**: composing from an untouched store is
   bit-deterministic — identical trial lists across repeated runs and
   across ``--jobs``, with pooled aggregates exactly equal to the
   build campaign's and ``composed_fraction == 1.0``.
3. **Pruning soundness**: flipping a sample of statically-masked bits
   (no detector armed) leaves the final value and every observed
   output byte-identical to the fault-free run — zero effectful
   masked bits.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py \
        [--trials 400] [--seed 3] [--sample 40] \
        [--json BENCH_incremental.json] [--check]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tests"))

from helpers import build_two_function_workload  # noqa: E402
from repro.encore import compile_for_encore  # noqa: E402
from repro.incremental import (  # noqa: E402
    SectionStore,
    capture_attribution,
    dead_sites,
    module_dead_masks,
    run_incremental_campaign,
)
from repro.runtime import DetectionModel, Interpreter, run_campaign  # noqa: E402
from repro.runtime.interpreter import bitflip  # noqa: E402

OUTPUTS = ("arr",)


def build(g_mult):
    module, _ = build_two_function_workload(g_mult)
    return compile_for_encore(module, clone=True).module


def binomial_half_width(p, n, z=1.96):
    if n <= 0:
        return 0.0
    p = min(max(p, 0.0), 1.0)
    return z * (p * (1.0 - p) / n) ** 0.5


def run_full(module, detector, trials, seed):
    start = time.perf_counter()
    campaign = run_campaign(
        module, output_objects=OUTPUTS, detector=detector,
        trials=trials, seed=seed,
    )
    return campaign, time.perf_counter() - start


def run_incremental(module, store, detector, trials, seed, jobs=1):
    start = time.perf_counter()
    campaign = run_incremental_campaign(
        module, store, output_objects=OUTPUTS, detector=detector,
        trials=trials, seed=seed, jobs=jobs,
    )
    return campaign, time.perf_counter() - start


def bench_edit_one_function(detector, trials, seed, tmp):
    """Build on the base module, edit ``g``, compare full vs incremental."""
    base = build(3)
    edited = build(5)
    store = SectionStore.open(str(Path(tmp) / "edit.json"))
    _build, build_elapsed = run_incremental(base, store, detector,
                                           trials, seed)
    full, full_elapsed = run_full(edited, detector, trials, seed)
    incremental, inc_elapsed = run_incremental(edited, store, detector,
                                              trials, seed)
    estimate, inc_half = incremental.coverage_interval()
    full_half = binomial_half_width(full.covered_fraction, trials)
    reinjected = sorted(
        section
        for section, status in incremental.section_status.items()
        if status in ("reinjected", "analytic")
    )
    return {
        "trials": trials,
        "build_elapsed_s": round(build_elapsed, 3),
        "full_executed": trials,
        "full_elapsed_s": round(full_elapsed, 3),
        "full_covered": full.covered_fraction,
        "full_ci_half": full_half,
        "incremental_executed": incremental.executed_trials,
        "incremental_elapsed_s": round(inc_elapsed, 3),
        "incremental_estimate": estimate,
        "incremental_ci_half": inc_half,
        "composed_fraction": incremental.composed_fraction,
        "reinjected_sections": reinjected,
        "trial_reduction": (
            trials / max(incremental.executed_trials, 1)
        ),
        "ci_matched": inc_half <= full_half,
        "only_edited_function": all(
            section.startswith("g@") or section == "@dead"
            for section in reinjected
        ),
    }


def bench_no_change_determinism(detector, trials, seed, tmp):
    """Compose twice and under --jobs: byte-identical, exact aggregates."""
    module = build(3)
    store = SectionStore.open(str(Path(tmp) / "nochange.json"))
    built, _ = run_incremental(module, store, detector, trials, seed)
    runs = [
        run_incremental(module, store, detector, trials, seed, jobs=jobs)[0]
        for jobs in (1, 2, 1)
    ]
    trial_lists = [
        [dataclasses.asdict(t) for t in run.trials] for run in runs
    ]
    deterministic = all(tl == trial_lists[0] for tl in trial_lists[1:])
    exact = all(
        abs(run.covered_fraction - built.covered_fraction) < 1e-12
        and run.composed_fraction == 1.0
        and run.executed_trials == 0
        for run in runs
    )
    return {
        "compose_runs": len(runs),
        "deterministic_across_runs_and_jobs": deterministic,
        "aggregates_exact": exact,
    }


def bench_pruning_soundness(sample, seed):
    """Flip statically-masked bits; final state must be unchanged."""
    module = build(3)
    profile = capture_attribution(module, output_objects=OUTPUTS)
    masks = module_dead_masks(module, output_objects=OUTPUTS)
    pairs = dead_sites(profile, masks)
    rng = random.Random(seed)
    chosen = pairs if len(pairs) <= sample else rng.sample(pairs, sample)
    golden = profile.golden
    effectful = 0
    for event, bit in chosen:
        state = {"done": False}

        def hook(interp, ev, _event=event, _bit=bit, _state=state):
            if not _state["done"] and ev.index == _event:
                frame = interp.current_frame
                dest = ev.inst.defs()[0]
                frame.regs[dest] = bitflip(frame.regs[dest], _bit)
                _state["done"] = True

        result = Interpreter(
            module, post_step=hook, max_steps=golden.events * 4 + 1000,
        ).run("main", (), output_objects=OUTPUTS)
        if result.value != golden.value or result.output != golden.output:
            effectful += 1
    return {
        "dead_pairs_total": len(pairs),
        "dead_pairs_flipped": len(chosen),
        "effectful_masked_bits": effectful,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=400,
                        help="campaign budget per leg")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--dmax", type=int, default=20)
    parser.add_argument("--sample", type=int, default=40,
                        help="statically-dead bits to flip in the "
                             "soundness leg")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail unless reduction >= 5x at matched CI, "
                             "compose is deterministic and exact, and no "
                             "masked bit is effectful")
    args = parser.parse_args(argv)

    detector = DetectionModel(dmax=args.dmax)
    with tempfile.TemporaryDirectory(prefix="bench-incremental-") as tmp:
        edit = bench_edit_one_function(detector, args.trials, args.seed, tmp)
        nochange = bench_no_change_determinism(detector, args.trials,
                                               args.seed, tmp)
    soundness = bench_pruning_soundness(args.sample, args.seed)

    print("edit-one-function")
    print(f"  full campaign      {edit['full_executed']:>5} trials  "
          f"covered {edit['full_covered']:.2%}  "
          f"CI +/-{edit['full_ci_half'] * 100:.2f}pp  "
          f"{edit['full_elapsed_s']:.2f}s")
    print(f"  incremental        {edit['incremental_executed']:>5} trials  "
          f"estimate {edit['incremental_estimate']:.2%}  "
          f"CI +/-{edit['incremental_ci_half'] * 100:.2f}pp  "
          f"{edit['incremental_elapsed_s']:.2f}s")
    print(f"  trial reduction    {edit['trial_reduction']:.1f}x  "
          f"(composed {edit['composed_fraction']:.1%}; re-injected "
          f"{', '.join(edit['reinjected_sections'])})")
    print("no-change compose")
    print(f"  deterministic across runs and jobs: "
          f"{nochange['deterministic_across_runs_and_jobs']}")
    print(f"  aggregates exact, zero trials:      "
          f"{nochange['aggregates_exact']}")
    print("pruning soundness")
    print(f"  flipped {soundness['dead_pairs_flipped']} of "
          f"{soundness['dead_pairs_total']} provably-dead bits: "
          f"{soundness['effectful_masked_bits']} effectful")

    payload = {
        "benchmark": "bench_incremental",
        "edit_one_function": edit,
        "no_change": nochange,
        "pruning_soundness": soundness,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.check:
        failures = []
        if edit["trial_reduction"] < 5.0:
            failures.append(
                f"trial reduction {edit['trial_reduction']:.1f}x < 5x"
            )
        if not edit["ci_matched"]:
            failures.append(
                f"incremental CI +/-{edit['incremental_ci_half']:.4f} wider "
                f"than full +/-{edit['full_ci_half']:.4f}"
            )
        if not edit["only_edited_function"]:
            failures.append(
                f"re-injected beyond the edited function: "
                f"{edit['reinjected_sections']}"
            )
        if not nochange["deterministic_across_runs_and_jobs"]:
            failures.append("no-change compose not deterministic")
        if not nochange["aggregates_exact"]:
            failures.append("no-change compose aggregates not exact")
        if soundness["effectful_masked_bits"]:
            failures.append(
                f"{soundness['effectful_masked_bits']} masked bits were "
                f"effectful"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"CHECK PASSED: {edit['trial_reduction']:.1f}x >= 5x at "
              f"matched CI, compose deterministic and exact, "
              f"0 effectful masked bits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
