"""Overhead benchmark: the metadata guard's seal/verify/repair cost.

Four questions, answered on the same instrumented module:

1. What does each guard level cost in wall-clock per trial?  ``off``
   is the floor (the guard's hooks are near-no-ops), ``checksum``
   seals every pushed record and published pointer, ``dup`` adds the
   shadow copies and repair path.
2. What does each level cost in the paper's dynamic-instruction
   currency?  A fault-free supervised run reports its instrumentation
   cost; the delta over ``off`` is the modelled seal overhead.
3. What does the protection buy?  With metadata faults enabled,
   ``off`` leaks ``metadata_corrupt_silent`` trials, ``checksum``
   converts them to deterministic detections, and ``dup`` repairs
   them back into covered recoveries.
4. Sanity: without metadata faults every guard level must produce the
   identical trial sequence — the guard never changes the event
   stream, only the cost accounting.

Usage::

    PYTHONPATH=src python benchmarks/bench_guarded_state.py \
        [--trials 200] [--module examples/mc/crc32.mc] [--check]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.encore import compile_for_encore  # noqa: E402
from repro.frontend import compile_source  # noqa: E402
from repro.runtime import (  # noqa: E402
    GUARD_LEVELS,
    DetectionModel,
    Interpreter,
    run_campaign,
)


def time_campaign(module, trials, seed, dmax, guard, metadata_faults=0):
    start = time.perf_counter()
    campaign = run_campaign(
        module,
        trials=trials,
        seed=seed,
        detector=DetectionModel(dmax=dmax),
        metadata_faults_per_trial=metadata_faults,
        metadata_guard=guard,
    )
    return campaign, time.perf_counter() - start


def fault_free_instrumentation_cost(module, guard):
    """Dynamic instrumentation instructions of one clean run."""
    interp = Interpreter(module, metadata_guard=guard)
    interp.run("main")
    return interp.instrumentation_cost


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--module", default=str(REPO_ROOT / "examples/mc/crc32.mc"))
    parser.add_argument("--trials", type=int, default=200)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--dmax", type=int, default=50)
    parser.add_argument("--metadata-faults", type=int, default=1)
    parser.add_argument("--check", action="store_true",
                        help="fail on guard-neutrality violations, on a "
                             "silent-corruption leak at checksum/dup, or "
                             "on wall-clock overhead beyond 2x")
    args = parser.parse_args(argv)

    module = compile_for_encore(
        compile_source(Path(args.module).read_text()), clone=False
    ).module
    print(f"module={args.module} trials={args.trials} dmax={args.dmax} "
          f"metadata_faults={args.metadata_faults}")

    # -- cost: wall clock and modelled dynamic instructions --------------
    clean = {}
    times = {}
    print("\nfault-free cost per guard level:")
    for level in GUARD_LEVELS:
        cost = fault_free_instrumentation_cost(module, level)
        campaign, elapsed = time_campaign(
            module, args.trials, args.seed, args.dmax, level
        )
        clean[level] = campaign
        times[level] = elapsed
        print(f"  {level:>8}: {elapsed / args.trials * 1e3:8.2f} ms/trial   "
              f"instrumentation {cost:6d} dyn instrs "
              f"(+{cost - fault_free_instrumentation_cost(module, 'off')} "
              f"over off)")

    neutral = clean["off"].trials == clean["checksum"].trials == \
        clean["dup"].trials
    print(f"guard neutrality (no metadata faults): "
          f"{'identical trials' if neutral else 'VIOLATED'}")

    # -- protection: what each level buys under metadata faults ----------
    print("\nunder metadata faults:")
    faulted = {}
    for level in GUARD_LEVELS:
        campaign, _ = time_campaign(
            module, args.trials, args.seed, args.dmax, level,
            metadata_faults=args.metadata_faults,
        )
        faulted[level] = campaign
        print(f"  {level:>8}: covered {campaign.covered_fraction:6.1%}   "
              f"silent {campaign.count('metadata_corrupt_silent'):3d}   "
              f"detected {campaign.count('metadata_corrupt_detected'):3d}   "
              f"repairs {sum(t.metadata_repairs for t in campaign.trials):3d}")

    if args.check:
        failures = []
        if not neutral:
            failures.append("guard level changed fault-free trial results")
        for level in ("checksum", "dup"):
            leaked = faulted[level].count("metadata_corrupt_silent")
            if leaked:
                failures.append(
                    f"{level} leaked {leaked} silent metadata corruptions"
                )
        if faulted["dup"].covered_fraction < faulted["off"].covered_fraction:
            failures.append("dup guard lost coverage versus off")
        if times["dup"] > 2.0 * times["off"]:
            failures.append(
                f"dup wall-clock overhead x{times['dup'] / times['off']:.2f}"
                " > 2x"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("\ncheck passed: guard neutral when idle, no silent leaks, "
              "overhead within bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
