"""Table 1, measured: Encore vs working conventional-recovery baselines.

The paper's Table 1 contrasts Encore with enterprise full-system
checkpointing and architectural log-based recovery on qualitative
attributes.  With all three mechanisms implemented on the same
interpreter the comparison becomes quantitative — with one scale
caveat: our programs' entire memory footprints are kilobytes, so the
paper's GB-vs-bytes storage gap appears here as a *scaling law*
(full-system storage tracks the memory footprint; Encore's tracks its
few checkpoint sites, independent of footprint) rather than as raw
orders of magnitude.
"""

from repro.encore import EncoreConfig, RegionStatus, compile_for_encore
from repro.ir.types import WORD_BYTES
from repro.experiments import run_sfi
from repro.runtime import DetectionModel, Interpreter
from repro.runtime.baselines import run_baseline_campaign
from repro.workloads import build_workload

WORKLOADS = ["mpeg2dec", "g721decode"]
TRIALS = 40
LATENCY = 10


def _measure(name):
    row = {}

    built = build_workload(name)
    footprint_words = sum(obj.size for obj in built.module.globals.values())
    report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
    interp = Interpreter(report.module)
    interp.run(built.entry, built.args)
    peak = max(interp.peak_ckpt_words.values()) if interp.peak_ckpt_words else 0
    campaign = run_sfi(
        report.module, args=built.args, output_objects=built.output_objects,
        detector=DetectionModel(dmax=LATENCY), trials=TRIALS, seed=19,
    )
    row["encore"] = {
        "covered": campaign.covered_fraction,
        "storage_bytes": peak * WORD_BYTES,
        "overhead": report.estimated_overhead(),
    }
    row["footprint_bytes"] = footprint_words * WORD_BYTES
    row["idempotent_runtime"] = report.dynamic_breakdown()["idempotent"]

    for scheme, interval in (("full", 2000), ("log", 2000)):
        built = build_workload(name)
        baseline = run_baseline_campaign(
            built.module, scheme, interval=interval,
            args=built.args, output_objects=built.output_objects,
            trials=TRIALS, latency=LATENCY, seed=19,
        )
        golden = Interpreter(built.module).run(built.entry, built.args)
        overhead = baseline.stats.words_copied / max(golden.events, 1)
        if scheme == "log":
            overhead += 2 * baseline.stats.log_entries / max(golden.events, 1)
        row[scheme] = {
            "covered": baseline.covered_fraction,
            "storage_bytes": baseline.stats.peak_storage_bytes,
            "overhead": overhead,
        }
    return row


def run_comparison():
    return {name: _measure(name) for name in WORKLOADS}


def test_table1_measured_comparison(once):
    rows = once(run_comparison)
    print()
    for name, row in rows.items():
        print(f"--- {name} (memory footprint {row['footprint_bytes']}B)")
        print(f"{'scheme':<8} {'covered':>9} {'storage':>10} {'ckpt ovh':>9}")
        for scheme in ("encore", "full", "log"):
            cell = row[scheme]
            print(f"{scheme:<8} {cell['covered']:>9.1%} "
                  f"{cell['storage_bytes']:>9}B {cell['overhead']:>9.1%}")

    for name, row in rows.items():
        # Full-system storage is the footprint: it scales with memory,
        # not with program behaviour (the GB column of Table 1 at scale).
        assert row["full"]["storage_bytes"] >= 0.8 * row["footprint_bytes"], name
        # Conventional schemes pay checkpoint work proportional to the
        # state they copy/log; Encore pays only for its few sites.
        assert row["encore"]["overhead"] < row["full"]["overhead"], name
        # Guaranteed-recovery schemes land at near-total coverage;
        # Encore is probabilistic but in the same band.
        assert row["full"]["covered"] > 0.9, name
        assert row["log"]["covered"] > 0.9, name
        assert row["encore"]["covered"] > 0.75, name

    # The scaling law: on an idempotence-dominated workload Encore's
    # storage is negligible and footprint-independent, while the
    # baselines still pay for the whole state.
    streaming = rows["mpeg2dec"]
    assert streaming["idempotent_runtime"] > 0.9
    assert streaming["encore"]["storage_bytes"] * 10 < streaming["full"]["storage_bytes"]
    # Encore storage is driven by checkpoint sites, not footprint: the
    # WAR-heavy codec needs orders of magnitude more Encore storage than
    # the idempotent one despite comparable memory footprints.
    assert (
        rows["g721decode"]["encore"]["storage_bytes"]
        > 10 * rows["mpeg2dec"]["encore"]["storage_bytes"]
    )
