"""Wall-clock benchmark: generator + oracle throughput, serial vs
parallel.

Measures the fuzzing subsystem the way campaigns actually run it —
generate a program, run the per-program oracle suite — and reports
programs/sec for ``--jobs 1`` against ``--jobs N``, plus the
generator's own raw synthesis rate.  ``--check`` enforces the
determinism invariant that makes parallel fuzzing trustworthy at all:
the serial and parallel campaigns must produce the identical record
stream and campaign fingerprint, and the run must report zero oracle
failures.

Usage::

    PYTHONPATH=src python benchmarks/bench_fuzz.py \
        [--budget 60] [--jobs 4] [--profile small] [--check]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fuzz import (  # noqa: E402
    PROFILES,
    FuzzSettings,
    generate_program,
    derive_program_seed,
    run_fuzz_campaign,
)

ORACLES = ("semantic", "conservative", "opt", "rollback")


def bench_generator(settings: FuzzSettings, budget: int) -> float:
    start = time.perf_counter()
    for index in range(budget):
        generate_program(
            derive_program_seed(settings.seed, index),
            PROFILES[settings.profile],
        )
    return time.perf_counter() - start


def bench_campaign(settings: FuzzSettings, budget: int, jobs: int):
    start = time.perf_counter()
    result = run_fuzz_campaign(
        settings, budget=budget, jobs=jobs, reduce=False
    )
    return result, time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=60,
                        help="programs per measurement (default 60)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel worker count (default 4)")
    parser.add_argument("--profile", default="small",
                        choices=sorted(PROFILES))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--check", action="store_true",
                        help="fail unless serial == parallel and zero "
                             "oracle failures")
    args = parser.parse_args()

    settings = FuzzSettings(
        seed=args.seed, profile=args.profile,
        oracles=ORACLES, campaign_every=0,
    )

    gen_elapsed = bench_generator(settings, args.budget)
    serial, serial_elapsed = bench_campaign(settings, args.budget, 1)
    parallel, parallel_elapsed = bench_campaign(
        settings, args.budget, args.jobs
    )

    identical = (
        serial.records == parallel.records
        and serial.fingerprint() == parallel.fingerprint()
    )
    failures = len(serial.failures)
    speedup = serial_elapsed / max(parallel_elapsed, 1e-9)

    print(f"profile:               {args.profile}")
    print(f"programs:              {args.budget}")
    print(f"oracles:               {', '.join(ORACLES)}")
    print(f"generator only:        "
          f"{args.budget / max(gen_elapsed, 1e-9):.1f} programs/sec")
    print(f"serial campaign:       "
          f"{args.budget / max(serial_elapsed, 1e-9):.1f} programs/sec "
          f"({serial_elapsed:.2f}s)")
    print(f"parallel campaign:     "
          f"{args.budget / max(parallel_elapsed, 1e-9):.1f} programs/sec "
          f"({parallel_elapsed:.2f}s, jobs={args.jobs})")
    print(f"speedup:               {speedup:.2f}x")
    print(f"oracle failures:       {failures}")
    print(f"serial == parallel:    {identical}")
    print(f"fingerprint:           {serial.fingerprint()}")

    if not identical:
        print("FAIL: parallel campaign diverged from serial",
              file=sys.stderr)
        return 1
    if args.check:
        if failures:
            print(f"FAIL: {failures} oracle failures on a clean "
                  f"toolchain", file=sys.stderr)
            return 1
        print("CHECK PASSED: bit-identical serial/parallel campaigns, "
              "zero oracle failures")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
