"""Ablation: Encore's fine-grained regions vs whole-function granularity.

Paper Section 2.2 argues against prior function-level approaches
(Relax / de Kruijf et al.): "although there is plenty of opportunity
present, only a few of these regions actually span an entire function."
Running the same pipeline with one-region-per-function candidates shows
how much recoverable coverage fine-grained partitioning unlocks.
"""

from repro.encore import EncoreConfig, RegionStatus, compile_for_encore
from repro.workloads import all_workloads

SUBSET = [
    "164.gzip", "181.mcf", "172.mgrid", "183.equake",
    "cjpeg", "g721decode", "mpeg2dec", "rawcaudio",
]


def sweep_granularity():
    rows = {}
    for name in SUBSET:
        rows[name] = {}
        for granularity in ("interval", "function"):
            spec = next(s for s in all_workloads() if s.name == name)
            built = spec.build()
            report = compile_for_encore(
                built.module,
                EncoreConfig(granularity=granularity),
                args=built.args,
            )
            fr = report.region_status_fractions()
            rows[name][granularity] = {
                "idem_regions": fr[RegionStatus.IDEMPOTENT],
                "coverage": report.coverage(100).recoverable,
                "overhead": report.estimated_overhead(),
            }
    return rows


def test_function_granularity_baseline(once):
    rows = once(sweep_granularity)
    print()
    print(f"{'benchmark':<12} {'interval cov':>13} {'function cov':>13} "
          f"{'interval idem%':>15} {'function idem%':>15}")
    for name, by_g in rows.items():
        print(f"{name:<12} {by_g['interval']['coverage']:>13.1%} "
              f"{by_g['function']['coverage']:>13.1%} "
              f"{by_g['interval']['idem_regions']:>15.1%} "
              f"{by_g['function']['idem_regions']:>15.1%}")

    n = len(rows)
    mean_interval = sum(r["interval"]["coverage"] for r in rows.values()) / n
    mean_function = sum(r["function"]["coverage"] for r in rows.values()) / n

    # Fine-grained regions recover substantially more execution on
    # average ...
    assert mean_interval > mean_function + 0.10, (mean_interval, mean_function)
    # ... and, critically, they are *robust*: function granularity is
    # all-or-nothing — a single WAR-through-call or unknown block
    # forfeits the entire program (gzip/mcf-class codes drop to ~0),
    # while fine-grained partitioning always salvages the clean regions.
    min_interval = min(r["interval"]["coverage"] for r in rows.values())
    min_function = min(r["function"]["coverage"] for r in rows.values())
    assert min_interval > 0.5, min_interval
    assert min_function < 0.05, min_function
    # "Only a few regions span an entire function": whole-function
    # candidates are rarely idempotent.
    mean_fn_idem = sum(r["function"]["idem_regions"] for r in rows.values()) / n
    mean_iv_idem = sum(r["interval"]["idem_regions"] for r in rows.values()) / n
    assert mean_fn_idem < mean_iv_idem
