"""Wall-clock benchmark: campaign-service dispatch vs the in-process
pool, and work-stealing vs static sharding.

Three measurements:

* **dispatch overhead** — the same campaign through
  ``run_campaign(jobs=N)`` (the in-process pool) and through a
  supervised :class:`~repro.service.CampaignTask` (the service's
  batch dispatcher).  The service adds per-batch round-trips and
  health bookkeeping; ``--check`` bounds that tax at 3x.
* **work-stealing vs static sharding** — a deliberately skewed batch
  list (one straggler batch holding half the trials plus many 1-trial
  batches).  Static sharding pins batches round-robin, so the
  straggler's slot also queues half the small batches behind it;
  work-stealing lets the other workers drain them.  Because trial
  cost is uniform by construction, the *makespan* — the largest
  per-worker trial count — is a machine-independent measure of each
  schedule (wall-clock only shows the gap when the host actually has
  a core per worker); ``--check`` requires stealing's makespan to
  beat static's.
* **bit-identity** — the served journal must be byte-identical to the
  serial one-shot journal (always enforced, even without ``--check``;
  this is the invariant that makes the other numbers meaningful).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py \
        [--trials 96] [--workers 2] [--check]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.ir.builder import IRBuilder  # noqa: E402
from repro.ir.module import Module  # noqa: E402
from repro.ir.printer import module_to_text  # noqa: E402
from repro.runtime import (  # noqa: E402
    CampaignJournal,
    campaign_metadata,
    run_campaign,
)
from repro.service import (  # noqa: E402
    BatchState,
    CampaignSpec,
    CampaignTask,
)


def build_workload(n: int = 400) -> Module:
    """A counted loop heavy enough that trial cost dwarfs dispatch."""
    module = Module("bench")
    arr = module.add_global("arr", n)
    func = module.add_function("main")
    b = IRBuilder(func)
    i = b.fresh("i")
    total = b.fresh("sum")
    b.block("entry")
    b.mov(0, i)
    b.mov(0, total)
    b.jmp("header")
    b.block("header")
    cond = b.cmp("slt", i, n)
    b.br(cond, "body", "exit")
    b.block("body")
    sq = b.mul(i, i)
    b.store(arr, i, sq)
    b.add(total, sq, total)
    b.add(i, 1, i)
    b.jmp("header")
    b.block("exit")
    b.ret(total)
    return module


def serial_reference(module: Module, spec: CampaignSpec, path: str) -> float:
    detector = spec.detector()
    start = time.perf_counter()
    with CampaignJournal(path) as journal:
        journal.write_header(campaign_metadata(
            module, spec.seed, detector,
            function=spec.function, args=list(spec.args),
            faults_per_trial=spec.faults_per_trial,
        ))
        run_campaign(
            module, trials=spec.trials, seed=spec.seed, detector=detector,
            output_objects=list(spec.output_objects),
            on_result=journal.record,
        )
    return time.perf_counter() - start


def pool_run(module: Module, spec: CampaignSpec, jobs: int) -> float:
    start = time.perf_counter()
    run_campaign(
        module, trials=spec.trials, seed=spec.seed,
        detector=spec.detector(),
        output_objects=list(spec.output_objects), jobs=jobs,
    )
    return time.perf_counter() - start


def served_run(spec: CampaignSpec, path: str, workers: int,
               **kwargs) -> tuple:
    task = CampaignTask("bench", spec, path, workers=workers, **kwargs)
    start = time.perf_counter()
    asyncio.run(task.run())
    elapsed = time.perf_counter() - start
    if task.state != "completed":
        raise RuntimeError(f"benchmark campaign ended {task.state!r}: "
                           f"{task.error}")
    return task, elapsed


def skewed_batches(trials: int, workers: int, static: bool) -> list:
    """One straggler batch holding half the trials, the rest size 1."""
    big = tuple(range(trials // 2))
    small = [(i,) for i in range(trials // 2, trials)]
    indices = [big] + small
    return [
        BatchState(
            batch_id=number, indices=chunk,
            assigned_slot=(number % workers) if static else None,
        )
        for number, chunk in enumerate(indices)
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=96,
                        help="campaign size per measurement (default 96)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless overhead <= 3x, stealing beats "
                             "static, and journals are byte-identical")
    args = parser.parse_args()

    module = build_workload()
    spec = CampaignSpec(
        module_text=module_to_text(module) + "\n",
        output_objects=("arr",),
        trials=args.trials,
        seed=11,
        dmax=60,
    )

    with tempfile.TemporaryDirectory(prefix="encore-bench-svc-") as tmp:
        serial_path = f"{tmp}/serial.jsonl"
        served_path = f"{tmp}/served.jsonl"
        serial_elapsed = serial_reference(module, spec, serial_path)
        pool_elapsed = pool_run(module, spec, args.workers)
        _, served_elapsed = served_run(spec, served_path, args.workers)
        identical = (
            Path(serial_path).read_bytes() == Path(served_path).read_bytes()
        )

        steal_batches = skewed_batches(spec.trials, args.workers,
                                       static=False)
        static_batches = skewed_batches(spec.trials, args.workers,
                                        static=True)
        steal_task, steal_elapsed = served_run(
            spec, f"{tmp}/steal.jsonl", args.workers, batches=steal_batches)
        static_task, static_elapsed = served_run(
            spec, f"{tmp}/static.jsonl", args.workers,
            batches=static_batches, static_sharding=True)
        steal_makespan = max(
            w["trials_done"] for w in steal_task.monitor.snapshot())
        static_makespan = max(
            w["trials_done"] for w in static_task.monitor.snapshot())
        skew_identical = (
            Path(f"{tmp}/steal.jsonl").read_bytes()
            == Path(f"{tmp}/static.jsonl").read_bytes()
            == Path(serial_path).read_bytes()
        )

    overhead = served_elapsed / max(pool_elapsed, 1e-9)
    stealing_gain = static_makespan / max(steal_makespan, 1)
    rate = spec.trials / max(served_elapsed, 1e-9)

    print(f"trials:                  {spec.trials}")
    print(f"workers:                 {args.workers}")
    print(f"serial:                  {serial_elapsed:.2f}s")
    print(f"pool (run_campaign):     {pool_elapsed:.2f}s")
    print(f"service dispatcher:      {served_elapsed:.2f}s "
          f"({rate:.1f} trials/sec)")
    print(f"dispatch overhead:       {overhead:.2f}x vs pool")
    print(f"skewed, work-stealing:   {steal_elapsed:.2f}s, makespan "
          f"{steal_makespan} trials")
    print(f"skewed, static shards:   {static_elapsed:.2f}s, makespan "
          f"{static_makespan} trials")
    print(f"stealing gain:           {stealing_gain:.2f}x (by makespan)")
    print(f"served == serial bytes:  {identical}")
    print(f"skewed runs identical:   {skew_identical}")

    if not identical or not skew_identical:
        print("FAIL: served journal diverged from the serial one-shot "
              "journal", file=sys.stderr)
        return 1
    if args.check:
        failed = False
        if overhead > 3.0:
            print(f"FAIL: dispatch overhead {overhead:.2f}x exceeds the "
                  f"3x budget", file=sys.stderr)
            failed = True
        if steal_makespan >= static_makespan:
            print(f"FAIL: work-stealing makespan ({steal_makespan} "
                  f"trials) did not beat static sharding "
                  f"({static_makespan} trials) on the skewed workload",
                  file=sys.stderr)
            failed = True
        if failed:
            return 1
        print("CHECK PASSED: bounded dispatch overhead, stealing beats "
              "static, byte-identical journals")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
