"""Table 1: Encore's measured envelope vs conventional checkpointing."""

from repro.experiments import table1


def test_table1_envelope(once):
    data = once(table1.run)
    print()
    print(table1.render(data))

    # The paper's Encore column: intervals of 100-1000 instructions.
    # Our selected regions must land in (or around) that band; a few
    # naturally-large level-1 intervals (un-merged single loops) may
    # exceed it.
    assert data.interval_mean < 2_000
    assert data.interval_max <= 50_000
    assert data.interval_min >= 1

    # Storage: ~10-100 B per region, orders of magnitude under the
    # architectural (0.5-1 MB) and enterprise (0.5-1 GB) schemes.
    assert data.storage_mean < 200
    assert data.storage_max < 1_000
