"""Figure 6: breakdown of dynamic execution time.

Paper shape: despite comparable *static* idempotence, the FP and media
suites spend far more of their *runtime* in Encore-recoverable code
(idempotent + cheaply checkpointed) than the integer suite; a few
benchmarks concede visible "w/o Encore Checkpointing" segments.
"""

from repro.experiments import fig6_breakdown
from repro.workloads import (
    SUITE_MEDIABENCH,
    SUITE_SPEC_FP,
    SUITE_SPEC_INT,
    workloads_in_suite,
)


def _suite_mean(data, suite, key):
    names = [s.name for s in workloads_in_suite(suite)]
    return sum(data.breakdown[n][key] for n in names) / len(names)


def test_fig6_dynamic_breakdown(once):
    data = once(fig6_breakdown.run)
    print()
    print(fig6_breakdown.render(data))

    for name, row in data.breakdown.items():
        total = row["idempotent"] + row["checkpointed"] + row["unprotected"]
        assert abs(total - 1.0) < 1e-6, name

    def recoverable(suite):
        return _suite_mean(suite=suite, data=data, key="idempotent") + _suite_mean(
            suite=suite, data=data, key="checkpointed"
        )

    # FP and media runtimes are more Encore-recoverable than INT.
    assert recoverable(SUITE_SPEC_FP) > recoverable(SUITE_SPEC_INT)
    assert recoverable(SUITE_MEDIABENCH) > recoverable(SUITE_SPEC_INT)
    # And strongly so overall: the mean recoverable fraction is high.
    overall = sum(
        row["idempotent"] + row["checkpointed"] for row in data.breakdown.values()
    ) / len(data.breakdown)
    assert overall > 0.75

    # Idempotent runtime dominates somewhere (mgrid/djpeg-class codes).
    assert any(row["idempotent"] > 0.8 for row in data.breakdown.values())
    # And some benchmark concedes coverage (bzip2-class codes).
    assert any(row["unprotected"] > 0.1 for row in data.breakdown.values())
