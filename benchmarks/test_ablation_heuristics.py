"""Ablation: the gamma / eta selection heuristics (paper Section 3.4.2).

gamma filters regions by coverage-to-cost; eta gates region merging.
Expected behaviour: raising gamma sheds overhead at the price of
recoverable coverage; disabling merging (or demanding huge merge
returns) leaves smaller regions with worse coverage-per-entry.
"""

from repro.encore import EncoreConfig, compile_for_encore
from repro.workloads import build_workload

WORKLOADS = ["164.gzip", "183.equake", "g721decode", "256.bzip2"]


def sweep_gamma(gammas=(0.0, 2.0, 10.0, 50.0)):
    rows = {}
    for gamma in gammas:
        total_cov = 0.0
        total_ovh = 0.0
        for name in WORKLOADS:
            built = build_workload(name)
            report = compile_for_encore(
                built.module,
                EncoreConfig(gamma=gamma, auto_tune=False),
                args=built.args,
            )
            total_cov += report.coverage(100).recoverable
            total_ovh += report.estimated_overhead()
        rows[gamma] = {
            "coverage": total_cov / len(WORKLOADS),
            "overhead": total_ovh / len(WORKLOADS),
        }
    return rows


def sweep_eta(etas=(0.01, 0.25, 1e9)):
    rows = {}
    for eta in etas:
        sizes = []
        for name in WORKLOADS:
            built = build_workload(name)
            report = compile_for_encore(
                built.module, EncoreConfig(eta=eta), args=built.args
            )
            for region in report.selected_regions:
                if region.dyn_instructions > 0:
                    sizes.append(region.activation_length)
        rows[eta] = sum(sizes) / max(len(sizes), 1)
    return rows


def test_gamma_trades_coverage_for_overhead(once):
    rows = once(sweep_gamma)
    print()
    print(f"{'gamma':>8} {'coverage':>10} {'overhead':>10}")
    for gamma, row in rows.items():
        print(f"{gamma:>8} {row['coverage']:>10.2%} {row['overhead']:>10.2%}")

    gammas = sorted(rows)
    coverages = [rows[g]["coverage"] for g in gammas]
    overheads = [rows[g]["overhead"] for g in gammas]
    # Monotone: tighter gamma never raises overhead or coverage.
    for earlier, later in zip(overheads, overheads[1:]):
        assert later <= earlier + 1e-9
    for earlier, later in zip(coverages, coverages[1:]):
        assert later <= earlier + 1e-9
    # And the sweep actually moves both knobs.
    assert overheads[0] > overheads[-1]
    assert coverages[0] > coverages[-1]


def test_eta_controls_region_granularity(benchmark):
    rows = benchmark.pedantic(sweep_eta, rounds=1, iterations=1)
    print()
    print(f"{'eta':>12} {'mean activation length':>24}")
    for eta, size in rows.items():
        print(f"{eta:>12} {size:>24.1f}")

    etas = sorted(rows)
    # Small eta -> eager merging -> larger regions than an impossible
    # merge threshold.
    assert rows[etas[0]] >= rows[etas[-1]]
    assert rows[etas[0]] > 1.0
