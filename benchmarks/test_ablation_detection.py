"""Ablation: detection-latency distribution vs the uniform assumption.

The paper assumes detection latency uniform on [0, Dmax] (Equation 7).
This ablation evaluates Equation 6 numerically for fixed and geometric
latency models and cross-checks against an empirical SFI campaign,
showing how the distribution's shape — not just its maximum — moves
coverage.
"""

import copy

from repro.encore import (
    EncoreConfig,
    alpha,
    alpha_geometric,
    alpha_numeric,
    compile_for_encore,
)
from repro.experiments import run_sfi
from repro.experiments.fig8_coverage import run_replay_headtohead
from repro.runtime import DetectionModel
from repro.workloads import build_workload

DMAX = 100
LENGTHS = (50, 100, 200, 500, 2000)
DMAX_SWEEP = (10, 100, 1000)


def numeric_alphas():
    rows = {}
    for n in LENGTHS:
        uniform = alpha_numeric(n, DMAX)
        fixed = alpha_numeric(
            n, DMAX, latency_pdf=DetectionModel(DMAX, "fixed").pdf
        )
        geometric = alpha_numeric(
            n, DMAX, latency_pdf=DetectionModel(DMAX, "geometric").pdf
        )
        rows[n] = {
            "closed_form": alpha(n, DMAX),
            "uniform": uniform,
            "fixed": fixed,
            "geometric": geometric,
        }
    return rows


def test_detection_distribution_alpha(once):
    rows = once(numeric_alphas)
    print()
    print(f"{'n':>6} {'closed':>8} {'uniform':>8} {'fixed':>8} {'geometric':>10}")
    for n, row in rows.items():
        print(
            f"{n:>6} {row['closed_form']:>8.3f} {row['uniform']:>8.3f} "
            f"{row['fixed']:>8.3f} {row['geometric']:>10.3f}"
        )

    for n, row in rows.items():
        # The closed form is exactly the uniform case (Equation 7).
        assert abs(row["closed_form"] - row["uniform"]) < 0.03, n
        # A detector that always takes Dmax is the worst of the three.
        assert row["fixed"] <= row["uniform"] + 0.02, n
        # A geometric detector (front-loaded latencies) beats uniform.
        assert row["geometric"] >= row["uniform"] - 0.02, n
    # Alpha grows with region length for every distribution.
    for key in ("uniform", "fixed", "geometric"):
        values = [rows[n][key] for n in LENGTHS]
        assert values == sorted(values), key


def test_pdf_normalization():
    """Every detection pdf must integrate to ~1 over [0, Dmax].

    A mis-normalised density silently rescales every alpha the
    numerical integration produces, so this is the audit the whole
    ablation rests on.  Midpoint quadrature at 20k steps resolves even
    the fixed kind's narrow Dirac box (width Dmax/100).
    """
    steps = 20_000
    for kind in ("uniform", "fixed", "geometric"):
        for dmax in DMAX_SWEEP:
            pdf = DetectionModel(dmax, kind).pdf
            dl = dmax / steps
            total = sum(pdf((i + 0.5) * dl) * dl for i in range(steps))
            assert abs(total - 1.0) < 0.02, (kind, dmax, total)


def test_alpha_geometric_closed_form():
    """Pin the geometric closed form against Equation 6 by quadrature.

    ``alpha_geometric`` integrates the truncated-exponential latency
    density analytically; ``alpha_numeric`` with the model's own pdf
    must land on the same value for every (n, Dmax) — the geometric
    analogue of the Equation 7 closed-form/uniform pin above.
    """
    for dmax in DMAX_SWEEP:
        pdf = DetectionModel(dmax, "geometric").pdf
        for n in LENGTHS:
            closed = alpha_geometric(n, dmax)
            numeric = alpha_numeric(n, dmax, latency_pdf=pdf, steps=600)
            assert abs(closed - numeric) < 5e-3, (n, dmax, closed, numeric)
        # Geometric detection is front-loaded: never worse than the
        # uniform closed form, and both degenerate together at n >> Dmax.
        assert alpha_geometric(2000, dmax) >= alpha(2000, dmax) - 1e-9
    assert alpha_geometric(0, DMAX) == 0.0
    assert alpha_geometric(100, 0) == 1.0


def replay_headtohead():
    return run_replay_headtohead(trials=30, chunk_size=64, seed=11)


def test_replay_vs_model_headtohead(once):
    """Measured replay latencies vs the alpha model's assumed uniform.

    The replay backend must (a) measure every latency within one chunk,
    (b) flag a divergence in every symptom-free struck trial, (c) cover
    at least as much as the matched uniform model predicts minus noise,
    and (d) report both overheads the analytical model assumes away.
    """
    data = once(replay_headtohead)
    print()
    for name in sorted(data.rows):
        row = data.rows[name]
        print(
            f"  {name:<12} lat mean={row['measured_mean_latency']:5.1f} "
            f"max={row['measured_max_latency']:3.0f} "
            f"cov replay={row['replay_covered']:.2%} "
            f"model={row['model_covered']:.2%} "
            f"alpha={row['alpha_predicted']:.2%} "
            f"rec-ovh={row['record_overhead']:.1%}"
        )
    assert set(data.rows) == {"epic", "g721decode", "rawdaudio"}
    for name, row in data.rows.items():
        assert 0 < row["measured_max_latency"] <= data.chunk_size, name
        assert row["measured_mean_latency"] <= data.chunk_size, name
        assert row["divergence_rate"] == 1.0, (name, row["divergence_rate"])
        # Replay detects within the faulting chunk, so it can only beat
        # the uniform-[0, Dmax] model at matched Dmax (minus noise).
        assert row["replay_covered"] >= row["model_covered"] - 0.10, name
        assert row["replay_covered"] >= row["alpha_predicted"] - 0.10, name
        # The overheads the model assumes away must be real but bounded.
        assert 0.0 < row["record_overhead"] <= 0.35, name
        assert row["replay_overhead"] > 0.0, name


def empirical_vs_model():
    built = build_workload("g721decode")
    report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
    module = report.module
    results = {}
    for kind in ("uniform", "fixed", "geometric"):
        campaign = run_sfi(
            module,
            function=built.entry,
            args=built.args,
            output_objects=built.output_objects,
            detector=DetectionModel(DMAX, kind),
            trials=100,
            seed=23,
        )
        results[kind] = campaign.covered_fraction
    return results


def test_detection_distribution_empirical(once):
    results = once(empirical_vs_model)
    print()
    for kind, covered in results.items():
        print(f"  {kind:<10} covered {covered:.2%}")
    # The fixed-at-Dmax detector cannot beat the front-loaded ones by
    # more than sampling noise.
    assert results["fixed"] <= max(results["uniform"], results["geometric"]) + 0.08
    for kind, covered in results.items():
        assert covered > 0.5, (kind, covered)
