"""Ablation: detection-latency distribution vs the uniform assumption.

The paper assumes detection latency uniform on [0, Dmax] (Equation 7).
This ablation evaluates Equation 6 numerically for fixed and geometric
latency models and cross-checks against an empirical SFI campaign,
showing how the distribution's shape — not just its maximum — moves
coverage.
"""

import copy

from repro.encore import EncoreConfig, alpha, alpha_numeric, compile_for_encore
from repro.experiments import run_sfi
from repro.runtime import DetectionModel
from repro.workloads import build_workload

DMAX = 100
LENGTHS = (50, 100, 200, 500, 2000)


def numeric_alphas():
    rows = {}
    for n in LENGTHS:
        uniform = alpha_numeric(n, DMAX)
        fixed = alpha_numeric(
            n, DMAX, latency_pdf=DetectionModel(DMAX, "fixed").pdf
        )
        geometric = alpha_numeric(
            n, DMAX, latency_pdf=DetectionModel(DMAX, "geometric").pdf
        )
        rows[n] = {
            "closed_form": alpha(n, DMAX),
            "uniform": uniform,
            "fixed": fixed,
            "geometric": geometric,
        }
    return rows


def test_detection_distribution_alpha(once):
    rows = once(numeric_alphas)
    print()
    print(f"{'n':>6} {'closed':>8} {'uniform':>8} {'fixed':>8} {'geometric':>10}")
    for n, row in rows.items():
        print(
            f"{n:>6} {row['closed_form']:>8.3f} {row['uniform']:>8.3f} "
            f"{row['fixed']:>8.3f} {row['geometric']:>10.3f}"
        )

    for n, row in rows.items():
        # The closed form is exactly the uniform case (Equation 7).
        assert abs(row["closed_form"] - row["uniform"]) < 0.03, n
        # A detector that always takes Dmax is the worst of the three.
        assert row["fixed"] <= row["uniform"] + 0.02, n
        # A geometric detector (front-loaded latencies) beats uniform.
        assert row["geometric"] >= row["uniform"] - 0.02, n
    # Alpha grows with region length for every distribution.
    for key in ("uniform", "fixed", "geometric"):
        values = [rows[n][key] for n in LENGTHS]
        assert values == sorted(values), key


def empirical_vs_model():
    built = build_workload("g721decode")
    report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
    module = report.module
    results = {}
    for kind in ("uniform", "fixed", "geometric"):
        campaign = run_sfi(
            module,
            function=built.entry,
            args=built.args,
            output_objects=built.output_objects,
            detector=DetectionModel(DMAX, kind),
            trials=100,
            seed=23,
        )
        results[kind] = campaign.covered_fraction
    return results


def test_detection_distribution_empirical(once):
    results = once(empirical_vs_model)
    print()
    for kind, covered in results.items():
        print(f"  {kind:<10} covered {covered:.2%}")
    # The fixed-at-Dmax detector cannot beat the front-loaded ones by
    # more than sampling noise.
    assert results["fixed"] <= max(results["uniform"], results["geometric"]) + 0.08
    for kind, covered in results.items():
        assert covered > 0.5, (kind, covered)
