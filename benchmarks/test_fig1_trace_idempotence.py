"""Figure 1: fraction of dynamic traces that are inherently idempotent.

Paper shape: small traces are frequently idempotent, the fraction drops
sharply past ~50 instructions, and the "Idempotence Target" headroom
(nearly-idempotent traces) sits well above the fully-idempotent curve at
every size.
"""

from repro.experiments import fig1_traces


def test_fig1_trace_idempotence(once):
    data = once(fig1_traces.run)
    print()
    print(fig1_traces.render(data))

    sizes = list(data.window_sizes)
    fully = data.fully
    target = data.target

    # Monotone-ish decay: tiny windows beat big ones decisively.
    assert fully[sizes[0]] > fully[sizes[-1]]
    assert fully[10] >= 2 * fully[1000]

    # The paper's sharp drop moving from a handful of instructions to 50+.
    assert fully[10] - fully[50] > 0.05 or fully[10] > 0.5

    # Nearly-idempotent headroom (Encore's target) dominates everywhere.
    for size in sizes:
        assert target[size] >= fully[size]
    assert target[100] > fully[100]

    # Some meaningful idempotence exists even at 1000 instructions for
    # the streaming codes, but it is a minority overall.
    assert 0.0 <= fully[1000] < 0.5
