"""Figure 5: inherent region idempotence vs Pmin.

Paper shape: ~49% of regions idempotent without pruning, ~75% at
Pmin=0.0, with nearly all the benefit arriving at 0.0 and only small
further gains at 0.1/0.25.  FP and media codes sit above the integer
codes; Unknown segments come from library calls.
"""

from repro.experiments import fig5_idempotence
from repro.workloads import SUITE_SPEC_FP, SUITE_SPEC_INT, workloads_in_suite


def _mean_idem(data, pmin):
    values = [by_pmin[pmin]["idempotent"] for by_pmin in data.fractions.values()]
    return sum(values) / len(values)


def test_fig5_region_idempotence(once):
    data = once(fig5_idempotence.run)
    print()
    print(fig5_idempotence.render(data))

    unpruned = _mean_idem(data, None)
    p0 = _mean_idem(data, 0.0)
    p1 = _mean_idem(data, 0.1)
    p25 = _mean_idem(data, 0.25)

    # Paper: 49% unpruned -> 75% at Pmin=0.0.  Match the band and the
    # big-jump-then-plateau shape.
    assert 0.35 <= unpruned <= 0.65, unpruned
    assert 0.55 <= p0 <= 0.85, p0
    assert p0 - unpruned >= 0.08, "pruning dead code must be the main win"
    assert p25 >= p1 >= p0, "idempotence grows monotonically with Pmin"
    assert (p25 - p0) < (p0 - unpruned) + 0.10, "most benefit at Pmin=0.0"

    # Suite ordering: FP more idempotent than INT (paper Section 5.1).
    int_names = [s.name for s in workloads_in_suite(SUITE_SPEC_INT)]
    fp_names = [s.name for s in workloads_in_suite(SUITE_SPEC_FP)]
    int_mean = sum(data.fractions[n][0.0]["idempotent"] for n in int_names) / len(int_names)
    fp_mean = sum(data.fractions[n][0.0]["idempotent"] for n in fp_names) / len(fp_names)
    assert fp_mean > int_mean

    # Unknown segments exist (library calls) but are a clear minority.
    unknowns = [by_pmin[0.0]["unknown"] for by_pmin in data.fractions.values()]
    assert any(u > 0 for u in unknowns)
    assert sum(unknowns) / len(unknowns) < 0.25
