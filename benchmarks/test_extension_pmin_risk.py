"""Extension study: the *risk* of statistical idempotence.

Paper Section 5.1: pruning only never-executed code (Pmin = 0.0) buys
most of the idempotence "without incurring any measurable risk", while
larger Pmin values trade correctness risk for coverage.  This study
measures that risk directly, SPEC-style: Encore's decisions are made
with a *train*-input profile, then fault-injection runs on both the
train input and an unseen *ref* input.

A pruned-but-actually-executing WAR block means a rollback can restore
state incompletely; the hazard shows up as recovery-induced SDC in the
campaign (and only faults whose detection lands while such a path is
live are exposed, so the effect is a rate shift, not a cliff).
"""

from repro.encore import EncoreConfig
from repro.encore.pipeline import EncoreCompiler
from repro.profiling import profile_module
from repro.experiments import run_sfi
from repro.runtime import DetectionModel, Interpreter
from repro.workloads import build_workload

WORKLOADS = ["164.gzip", "197.parser", "300.twolf"]
PMINS = (0.0, 0.25)
TRIALS = 80


def _instrument_with_train_profile(name: str, pmin: float, variant: str):
    """Instrument the ``variant`` input build using a train profile."""
    train = build_workload(name, "train")
    profile = profile_module(train.module, args=train.args)
    target = build_workload(name, variant)
    report = EncoreCompiler(
        target.module, EncoreConfig(pmin=pmin)
    ).compile(profile=profile, args=target.args)
    return target, report


def run_risk_study():
    rows = {}
    for name in WORKLOADS:
        rows[name] = {}
        for pmin in PMINS:
            for variant in ("train", "ref"):
                built, report = _instrument_with_train_profile(
                    name, pmin, variant
                )
                golden = Interpreter(
                    build_workload(name, variant).module
                ).run(built.entry, built.args,
                      output_objects=built.output_objects)
                clean = Interpreter(report.module).run(
                    built.entry, built.args,
                    output_objects=built.output_objects,
                )
                campaign = run_sfi(
                    report.module,
                    args=built.args,
                    output_objects=built.output_objects,
                    detector=DetectionModel(dmax=20),
                    trials=TRIALS,
                    seed=13,
                )
                rows[name][(pmin, variant)] = {
                    "clean_ok": clean.output == golden.output
                    and clean.value == golden.value,
                    "covered": campaign.covered_fraction,
                    "sdc": campaign.fraction("sdc"),
                }
    return rows


def test_pmin_risk_study(once):
    rows = once(run_risk_study)
    print()
    print(f"{'benchmark':<12} {'pmin':>5} {'input':>6} {'clean':>6} "
          f"{'covered':>9} {'sdc':>7}")
    for name, cells in rows.items():
        for (pmin, variant), cell in cells.items():
            print(f"{name:<12} {pmin:>5} {variant:>6} "
                  f"{str(cell['clean_ok']):>6} {cell['covered']:>9.1%} "
                  f"{cell['sdc']:>7.1%}")

    for name, cells in rows.items():
        # Fault-free instrumented execution is ALWAYS correct: Encore's
        # transformation is semantics-preserving regardless of input or
        # pruning level — risk only materializes when a rollback fires.
        for key, cell in cells.items():
            assert cell["clean_ok"], (name, key)

        # Pmin = 0.0 decisions transfer to the unseen input with little
        # coverage loss (the "no measurable risk" regime).
        safe_train = cells[(0.0, "train")]["covered"]
        safe_ref = cells[(0.0, "ref")]["covered"]
        assert safe_ref >= safe_train - 0.15, (name, safe_train, safe_ref)

    # Aggregate risk signal.  The measured outcome is itself the
    # finding: pruning code that executes on ~20% of invocations
    # (Pmin = 0.25) does NOT measurably inflate SDC at these campaign
    # sizes — a rollback is only unsound if the detection window
    # intersects a live pruned path, which is rare.  This quantifies
    # why the paper is comfortable trading provability for coverage:
    # the risk is real in principle but statistically small.
    def total(metric, pmin, variant):
        return sum(rows[n][(pmin, variant)][metric] for n in rows) / len(rows)

    risky_sdc = max(total("sdc", 0.25, v) for v in ("train", "ref"))
    safe_sdc = min(total("sdc", 0.0, v) for v in ("train", "ref"))
    assert risky_sdc <= safe_sdc + 0.15, (safe_sdc, risky_sdc)
    # And coverage at either setting stays in the same band.
    assert abs(total("covered", 0.0, "train") - total("covered", 0.25, "train")) < 0.20
