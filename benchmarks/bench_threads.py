"""Wall-clock and invariant benchmark for the cooperative scheduler.

Three legs over the multithreaded workload suite:

* **threaded** — each spawn/join workload runs on both engines;
  results, event counts, and the full scheduler switch log must be
  bit-identical, and the scheduler's per-step bookkeeping cost is
  bounded by comparing reference-engine throughput on the threaded
  stencil against the matched serial workload (``serial_stencil`` runs
  the identical row routine without spawning, so the gap is the
  scheduler).  The comparison is on the reference tier because the
  first spawn parks the fast engine there permanently by design —
  scheduler behaviour is reference behaviour by construction;
* **serial==parallel** — ``stencil3`` (two workers over disjoint grid
  halves) must produce the same ``out`` array as ``serial_stencil``
  (one call over the full range): the data-parallel decomposition is
  semantics-preserving;
* **under-sfi** — a seeded control-flow fault campaign on the
  instrumented producer/consumer workload at ``threads=2``: serial and
  ``jobs=2`` runs must be bit-identical on both engines.

``--check`` enforces the acceptance bars: every leg bit-identical,
serial/parallel stencil outputs equal, and scheduler overhead bounded
(threaded steps/sec >= ``MIN_THREADED_RATIO`` x the serial-workload
steps/sec on the same engine).

Usage::

    PYTHONPATH=src python benchmarks/bench_threads.py \
        [--repeat 3] [--trials 30] [--json BENCH_threads.json] [--check]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.encore import compile_for_encore  # noqa: E402
from repro.runtime import (  # noqa: E402
    DECODE_CACHE,
    DetectionModel,
    make_interpreter,
    run_campaign,
)
from repro.workloads import threaded_workloads  # noqa: E402

ENGINES = ("fast", "reference")

#: Scheduler overhead bound: reference-engine steps/sec on the
#: threaded stencil must stay within this fraction of reference-engine
#: steps/sec on the serial stencil (same row routine, no scheduler).
#: The scheduler only runs ``after_step`` bookkeeping once the first
#: spawn engages it, so the gap is that bookkeeping plus switches.
MIN_THREADED_RATIO = 0.40


def observe(engine, built, repeat):
    """Best-of-``repeat`` timed run; returns (observables, best seconds)."""
    best = float("inf")
    obs = None
    for _ in range(repeat):
        interp = make_interpreter(built.module, engine=engine,
                                  externals=built.externals)
        start = time.perf_counter()
        result = interp.run(built.entry, built.args,
                            output_objects=built.output_objects)
        best = min(best, time.perf_counter() - start)
        sched = interp.scheduler
        obs = {
            "value": result.value,
            "output": result.output,
            "events": result.events,
            "switch_log": None if sched is None else tuple(sched.switch_log),
        }
    return obs, best


def run_threaded_leg(spec, repeat):
    built = spec.build()
    DECODE_CACHE.program_for(built.module)
    obs, times = {}, {}
    for engine in ENGINES:
        obs[engine], times[engine] = observe(engine, built, repeat)
    identical = obs["fast"] == obs["reference"]
    events = obs["reference"]["events"]
    switches = obs["reference"]["switch_log"]
    return {
        "workload": spec.name,
        "events": events,
        "switches": 0 if switches is None else len(switches),
        "fast_steps_per_sec": round(events / times["fast"]),
        "reference_steps_per_sec": round(events / times["reference"]),
        "speedup": round(times["reference"] / times["fast"], 2),
        "identical": identical,
    }, obs["reference"]


def run_sfi_leg(trials):
    """Threaded CFE campaign: serial == jobs=2, fast == reference."""
    spec = next(s for s in threaded_workloads() if s.name == "pc_codec")
    built = spec.build()
    instrumented = compile_for_encore(
        built.module, function=built.entry, args=built.args,
    ).module
    campaigns = {}
    elapsed = {}
    for engine in ENGINES:
        for jobs in (1, 2):
            start = time.perf_counter()
            campaigns[(engine, jobs)] = run_campaign(
                instrumented,
                function=built.entry,
                args=built.args,
                output_objects=built.output_objects,
                detector=DetectionModel(dmax=40),
                trials=trials,
                seed=7,
                engine=engine,
                jobs=jobs,
                threads=2,
                cf_faults_per_trial=1,
            )
            elapsed[(engine, jobs)] = time.perf_counter() - start
    trials_sets = [c.trials for c in campaigns.values()]
    identical = all(t == trials_sets[0] for t in trials_sets[1:])
    outcomes = {}
    for trial in campaigns[("fast", 1)].trials:
        outcomes[trial.outcome] = outcomes.get(trial.outcome, 0) + 1
    return {
        "leg": "under-sfi",
        "trials": trials,
        "threads": 2,
        "cf_faults_per_trial": 1,
        "fast_trials_per_sec": round(trials / elapsed[("fast", 1)], 1),
        "reference_trials_per_sec":
            round(trials / elapsed[("reference", 1)], 1),
        "outcomes": outcomes,
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per leg; best-of reported")
    parser.add_argument("--trials", type=int, default=30,
                        help="SFI campaign trials")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail unless every leg is bit-identical, "
                             "serial==parallel stencil, and scheduler "
                             f"overhead ratio >= {MIN_THREADED_RATIO}")
    args = parser.parse_args(argv)
    repeat = max(1, args.repeat)

    rows = []
    reference_obs = {}
    for spec in threaded_workloads():
        row, obs = run_threaded_leg(spec, repeat)
        rows.append(row)
        reference_obs[spec.name] = obs

    by_name = {row["workload"]: row for row in rows}
    overhead_ratio = round(
        by_name["stencil3"]["reference_steps_per_sec"]
        / by_name["serial_stencil"]["reference_steps_per_sec"], 3,
    )
    serial_eq_parallel = (
        reference_obs["stencil3"]["output"]["out"]
        == reference_obs["serial_stencil"]["output"]["out"]
    )
    sfi = run_sfi_leg(args.trials)

    all_identical = all(row["identical"] for row in rows) and sfi["identical"]
    for row in rows:
        print(f"{row['workload']:<16} fast "
              f"{row['fast_steps_per_sec'] / 1e3:>8.0f}k steps/s   "
              f"ref {row['reference_steps_per_sec'] / 1e3:>8.0f}k steps/s   "
              f"{row['speedup']:>5.2f}x   switches={row['switches']:<4d} "
              f"identical={row['identical']}")
    print(f"{'under-sfi':<16} fast "
          f"{sfi['fast_trials_per_sec']:>8.1f} trials/s   "
          f"ref {sfi['reference_trials_per_sec']:>8.1f} trials/s   "
          f"serial==jobs2=={sfi['identical']}")
    print(f"\nscheduler overhead ratio (threaded/serial steps/s): "
          f"{overhead_ratio:.3f} (bound {MIN_THREADED_RATIO})")
    print(f"serial stencil == parallel stencil: {serial_eq_parallel}")
    print(f"all legs bit-identical:             {all_identical}")

    if args.json:
        payload = {
            "benchmark": "bench_threads",
            "workloads": rows,
            "sfi": sfi,
            "scheduler_overhead_ratio": overhead_ratio,
            "serial_equals_parallel": serial_eq_parallel,
            "all_identical": all_identical,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if not all_identical:
        print("FAIL: engines or serial/parallel campaigns diverged",
              file=sys.stderr)
        return 1
    if args.check:
        if not serial_eq_parallel:
            print("FAIL: parallel stencil output != serial stencil output",
                  file=sys.stderr)
            return 1
        if overhead_ratio < MIN_THREADED_RATIO:
            print(f"FAIL: scheduler overhead ratio {overhead_ratio:.3f} "
                  f"< {MIN_THREADED_RATIO}", file=sys.stderr)
            return 1
        print(f"CHECK PASSED: bit-identical everywhere, serial==parallel, "
              f"overhead ratio {overhead_ratio:.3f} >= {MIN_THREADED_RATIO}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
