"""Quickstart: protect a small program with Encore and survive a fault.

Builds a tiny accumulator kernel in the repro IR, runs the Encore
pipeline (profile -> idempotence analysis -> region selection ->
instrumentation), then injects a transient bit-flip at runtime, lets the
detector fire, and shows the rollback producing the correct result.

Run with:  python examples/quickstart.py
"""

from repro.encore import EncoreConfig, compile_for_encore
from repro.ir import IRBuilder, Module, function_to_text
from repro.runtime import Interpreter, bitflip


def build_program() -> Module:
    """A histogram kernel: the load-increment-store is a classic WAR."""
    module = Module("quickstart")
    data = module.add_global("data", 64, init=[i * 7 % 16 for i in range(64)])
    hist = module.add_global("hist", 16)
    func = module.add_function("main")
    b = IRBuilder(func)
    i = b.fresh("i")
    b.block("entry")
    b.mov(0, i)
    b.jmp("header")
    b.block("header")
    cond = b.cmp("slt", i, 64)
    b.br(cond, "body", "exit")
    b.block("body")
    v = b.load(data, i)
    count = b.load(hist, v)      # read the bucket ...
    b.store(hist, v, b.add(count, 1))  # ... then overwrite it: WAR
    b.add(i, 1, i)
    b.jmp("header")
    b.block("exit")
    b.ret(b.load(hist, 0))
    return module


def main() -> None:
    module = build_program()
    golden = Interpreter(module).run("main", output_objects=["hist"])
    print(f"golden result: hist[0] = {golden.value}, "
          f"{golden.events} dynamic instructions")

    # Run the Encore pipeline.  clone=True leaves `module` pristine and
    # returns the instrumented copy inside the report.  This kernel is
    # deliberately checkpoint-heavy (one WAR store per 9-instruction
    # iteration costs ~22% to protect), so give it a budget above the
    # paper's default 20% target rather than letting the selector
    # concede the whole loop.
    report = compile_for_encore(
        module, EncoreConfig(overhead_budget=0.35), clone=True
    )
    print(f"\nregions: {len(report.candidate_regions)} candidates, "
          f"{len(report.selected_regions)} selected")
    for region in report.selected_regions:
        print(f"  {region.header:<10} {region.status.value:<16} "
              f"{len(region.checkpoint_sites)} mem checkpoint site(s), "
              f"{len(region.live_in_checkpoints)} register checkpoint(s)")
    print(f"estimated overhead: {report.estimated_overhead():.1%}")
    print(f"coverage at detection latency 100: "
          f"{report.coverage(100).recoverable:.1%} of execution")

    print("\ninstrumented main:")
    print(function_to_text(report.module.function("main")))

    # Inject a data fault mid-loop: corrupt the increment result that
    # feeds the histogram store (a pure value fault — the paper's
    # Section 4.3 excludes faults that divert control or corrupt
    # addresses, which detectors catch through symptoms instead).
    # The detector notices 5 instructions later and triggers rollback.
    state = {"injected": False, "recovered": False}

    def fault_hook(interp, event):
        if (
            not state["injected"]
            and event.index >= 100
            and event.inst.opcode == "binop"
            and event.inst.op == "add"
            and event.inst.dest.name.startswith("t")
        ):
            dest = event.inst.dest
            frame = interp.current_frame
            frame.regs[dest] = bitflip(frame.regs.get(dest, 0), 9)
            state["injected"] = True
            state["site"] = event.index
        elif state["injected"] and not state["recovered"] and (
            event.index >= state["site"] + 5
        ):
            state["recovered"] = interp.trigger_recovery()

    # A corrupted value can also surface as a trap symptom (e.g. an
    # out-of-bounds bucket index); the detector sees it immediately and
    # rolls back through the same recovery block.
    from repro.runtime import Trap

    interp = Interpreter(report.module, post_step=fault_hook)
    try:
        result = interp.run("main", output_objects=["hist"])
    except Trap as trap:
        print(f"\ntrap symptom: {trap.reason!r} — rolling back")
        state["recovered"] = interp.trigger_recovery(immediate=True)
        result = interp.resume(output_objects=["hist"])
    print(f"\nfault injected at instruction {state.get('site')}; "
          f"recovery {'succeeded' if state['recovered'] else 'FAILED'}")
    print(f"faulty-run result matches golden: "
          f"{result.output == golden.output and result.value == golden.value}")


if __name__ == "__main__":
    main()
