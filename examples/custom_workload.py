"""Protect your own application: authoring a workload with the Kit API.

Shows the full authoring-to-protection path a downstream user follows:
write an image-blur pipeline with the structured-control Kit, inspect
which regions Encore finds and why, and verify the instrumented program
produces identical output.

Run with:  python examples/custom_workload.py
"""

import copy

from repro.encore import EncoreConfig, RegionStatus, compile_for_encore
from repro.runtime import Interpreter
from repro.workloads import Kit, int_data, new_workload


def build_blur_pipeline():
    """A 3-stage image pipeline: blur (idempotent), gamma table rebuild
    (WAR on the table), and histogram equalization (WAR on counts)."""
    module, kit = new_workload("blur_pipeline")
    b = kit.b
    width = 96
    src = module.add_global("src", width, init=int_data("blur.src", width, 0, 255))
    dst = module.add_global("dst", width)
    gamma = module.add_global("gamma", 32, init=[i * 8 for i in range(32)])
    hist = module.add_global("hist", 32)
    b.block("entry")

    # Stage 1: 3-tap blur, reads src / writes dst — inherently idempotent.
    def blur(i):
        left = b.load(src, kit.clamp(b.sub(i, 1), 0, width - 1))
        mid = b.load(src, i)
        right = b.load(src, kit.clamp(b.add(i, 1), 0, width - 1))
        total = b.add(b.add(left, right), b.mul(mid, 2))
        b.store(dst, i, b.lshr(total, 2))

    kit.counted(width, blur, "blur")

    # Stage 2: in-place gamma-table sharpening — a WAR on every entry.
    def sharpen(k):
        old = b.load(gamma, k)                  # read ...
        b.store(gamma, k, b.lshr(b.mul(old, 9), 3))  # ... then overwrite

    kit.counted(32, sharpen, "sharpen")

    # Stage 3: histogram of gamma-corrected output (WAR on the buckets).
    def count(i):
        v = b.load(dst, i)
        bucket = b.lshr(v, 3)
        g = b.load(gamma, kit.clamp(bucket, 0, 31))
        cell = b.and_(g, 31)
        cur = b.load(hist, cell)
        b.store(hist, cell, b.add(cur, 1))

    kit.counted(width, count, "histeq")
    b.ret(b.load(hist, 0))
    return module


def main() -> None:
    module = build_blur_pipeline()
    golden = Interpreter(copy.deepcopy(module)).run(
        "main", output_objects=["dst", "gamma", "hist"]
    )
    report = compile_for_encore(module, EncoreConfig(), clone=True)

    print("region analysis:")
    for region in sorted(report.candidate_regions, key=lambda r: -r.dyn_instructions):
        mark = "*" if region.selected else " "
        print(f" {mark} {region.header:<16} {region.status.value:<16} "
              f"{region.dyn_instructions:>6} dyn instrs, "
              f"{len(region.checkpoint_sites)} checkpoint site(s)")
    print("   (* = selected for protection)")

    idem = [r for r in report.selected_regions if r.status is RegionStatus.IDEMPOTENT]
    print(f"\n{len(idem)} selected regions need no memory checkpoints at all;")
    print(f"estimated overhead {report.estimated_overhead():.1%}, "
          f"storage {report.instrumentation.mean_region_bytes:.0f} B/region")

    result = Interpreter(report.module).run(
        "main", output_objects=["dst", "gamma", "hist"]
    )
    assert result.output == golden.output and result.value == golden.value
    print("instrumented pipeline output verified identical to golden run")


if __name__ == "__main__":
    main()
