"""Statistical fault injection on a media workload, with and without Encore.

Reproduces the paper's evaluation loop on one benchmark: build the
ADPCM decoder workload, harden a copy with Encore, then bombard both
with random register bit-flips under a Shoestring-class detector and
compare outcome distributions and the analytical model's prediction.

Run with:  python examples/fault_injection_campaign.py [benchmark] [trials]
"""

import copy
import sys

from repro.encore import EncoreConfig, compile_for_encore
from repro.runtime import DetectionModel, run_campaign
from repro.workloads import build_workload


def main(benchmark: str = "g721decode", trials: int = 150) -> None:
    built = build_workload(benchmark)
    plain_module = copy.deepcopy(built.module)

    report = compile_for_encore(built.module, EncoreConfig(), args=built.args)
    print(f"{benchmark}: {len(report.selected_regions)} protected regions, "
          f"estimated overhead {report.estimated_overhead():.1%}")

    detector = DetectionModel(dmax=100, kind="uniform")
    campaigns = {
        "unprotected": run_campaign(
            plain_module, args=built.args,
            output_objects=built.output_objects,
            detector=detector, trials=trials, seed=42,
        ),
        "encore": run_campaign(
            report.module, args=built.args,
            output_objects=built.output_objects,
            detector=detector, trials=trials, seed=42,
        ),
    }

    print(f"\n{'outcome':<24}" + "".join(f"{k:>14}" for k in campaigns))
    for outcome in ("masked", "recovered", "detected_unrecoverable", "sdc"):
        row = f"{outcome:<24}"
        for campaign in campaigns.values():
            row += f"{campaign.fraction(outcome):>14.1%}"
        print(row)
    print(f"{'TOTAL covered':<24}" + "".join(
        f"{c.covered_fraction:>14.1%}" for c in campaigns.values()
    ))

    model = report.coverage(detector.dmax)
    print(f"\nanalytical model (Eq. 7): {model.recoverable:.1%} of execution "
          f"recoverable ({model.recoverable_idempotent:.1%} idempotent + "
          f"{model.recoverable_checkpointed:.1%} checkpointed)")
    print("note: the empirical campaign also injects the address/control "
          "faults the paper's Section 4.3 excludes from recovery.")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "g721decode"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    main(name, count)
