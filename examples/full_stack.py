"""The whole stack: C-like source to fault-tolerant execution.

1. Compile an MC source program (the ADPCM decoder from
   ``examples/mc/adpcm.mc``) to IR;
2. optimize it — inlining the ``clamp`` helper so the hot loop becomes
   one large protectable region;
3. protect it with the Encore pipeline;
4. train a likely-invariant symptom detector on one run; and
5. run a fault-injection campaign where that detector, not an assumed
   latency model, triggers the Encore rollbacks.

Run with:  python examples/full_stack.py
"""

import os

from repro.encore import EncoreConfig, compile_for_encore
from repro.frontend import compile_source
from repro.opt import optimize_module
from repro.runtime import run_symptom_campaign

MC_PATH = os.path.join(os.path.dirname(__file__), "mc", "adpcm.mc")


def main() -> None:
    with open(MC_PATH) as handle:
        source = handle.read()

    # 1-2. Compile and optimize (inlining clamp() into the sample loop).
    module = compile_source(source)
    raw_count = module.instruction_count()
    optimize_module(module)
    print(f"compiled {MC_PATH}: {raw_count} -> "
          f"{module.instruction_count()} instructions after optimization")

    # 3. Protect.
    report = compile_for_encore(module, EncoreConfig(), clone=False)
    print(f"Encore: {len(report.selected_regions)} regions protected, "
          f"estimated overhead {report.estimated_overhead():.1%}, "
          f"model coverage at Dmax=100: "
          f"{report.coverage(100).recoverable:.1%}")

    # 4-5. Train the symptom detector and attack the protected binary.
    campaign = run_symptom_campaign(
        report.module, output_objects=("audio",), trials=120, seed=7,
        slack=0.25,
    )
    print("\nfault-injection with the trained invariant detector:")
    for outcome in ("masked", "recovered", "detected_unrecoverable", "sdc"):
        print(f"  {outcome:<24} {campaign.fraction(outcome):.1%}")
    print(f"  {'TOTAL covered':<24} {campaign.covered_fraction:.1%}")
    latencies = campaign.observed_latencies()
    if latencies:
        latencies.sort()
        print(f"\nobserved detection latency: median "
              f"{latencies[len(latencies) // 2]} instructions, "
              f"90th percentile {latencies[int(len(latencies) * 0.9)]} "
              f"(the paper assumes a ~100-instruction regime)")


if __name__ == "__main__":
    main()
