"""Dial in reliability vs overhead: the end-user knobs of Encore.

The paper pitches Encore as "programmable heuristics that allow the
end-user to dial in the desired degree of fault-tolerance and therefore
only incur as much runtime overhead as they are able to budget."  This
example sweeps the overhead budget and the Pmin pruning threshold for
one benchmark and prints the resulting frontier.

Run with:  python examples/tuning_reliability_budget.py [benchmark]
"""

import sys

from repro.encore import EncoreConfig, compile_for_encore
from repro.workloads import build_workload

BUDGETS = (0.02, 0.05, 0.10, 0.20, 0.40)
PMINS = (None, 0.0, 0.1, 0.25)
DMAX = 100


def sweep_budget(benchmark: str) -> None:
    print(f"overhead budget sweep ({benchmark}, Pmin=0.0, Dmax={DMAX}):")
    print(f"{'budget':>8} {'est ovh':>9} {'coverage':>10} {'regions':>8}")
    for budget in BUDGETS:
        built = build_workload(benchmark)
        report = compile_for_encore(
            built.module,
            EncoreConfig(overhead_budget=budget),
            args=built.args,
        )
        print(f"{budget:>8.0%} {report.estimated_overhead():>9.1%} "
              f"{report.coverage(DMAX).recoverable:>10.1%} "
              f"{len(report.selected_regions):>8}")


def sweep_pmin(benchmark: str) -> None:
    print(f"\nPmin pruning sweep ({benchmark}, 20% budget):")
    print(f"{'Pmin':>8} {'idem regions':>13} {'est ovh':>9} {'coverage':>10}")
    for pmin in PMINS:
        built = build_workload(benchmark)
        report = compile_for_encore(
            built.module, EncoreConfig(pmin=pmin), args=built.args
        )
        from repro.encore import RegionStatus

        idem = report.region_status_fractions()[RegionStatus.IDEMPOTENT]
        label = "none" if pmin is None else f"{pmin:g}"
        print(f"{label:>8} {idem:>13.1%} {report.estimated_overhead():>9.1%} "
              f"{report.coverage(DMAX).recoverable:>10.1%}")


def main(benchmark: str = "183.equake") -> None:
    sweep_budget(benchmark)
    sweep_pmin(benchmark)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "183.equake")
